package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint is a content address of a labeled graph: the SHA-256 of its
// canonical frozen CSR. Two graphs have equal fingerprints iff they have
// the same vertex count and the same edge set over the same labels — the
// order edges were inserted, their orientation, and any collapsed
// duplicates or self-loops never affect it, because the CSR stores every
// adjacency list sorted and deduplicated. The mdsd result cache keys on it
// (plus solver params) so identical graphs submitted by different clients,
// in different formats, hit the same entry.
type Fingerprint [sha256.Size]byte

// String returns the fingerprint in hex, the form the service reports.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// fingerprintDomain separates CSR hashes from any future canonical forms.
const fingerprintDomain = "localmds/csr/v1\x00"

// Fingerprint computes the content address of the frozen view.
func (c *CSR) Fingerprint() Fingerprint {
	h := sha256.New()
	h.Write([]byte(fingerprintDomain))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(c.N()))
	h.Write(b[:])
	// Offsets and Targets determine each other's framing, so hashing the
	// two int32 streams in order is unambiguous.
	buf := make([]byte, 0, 4<<10)
	flush := func() {
		h.Write(buf)
		buf = buf[:0]
	}
	for _, o := range c.Offsets {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(o))
		if len(buf) >= 4<<10 {
			flush()
		}
	}
	for _, t := range c.Targets {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t))
		if len(buf) >= 4<<10 {
			flush()
		}
	}
	flush()
	var f Fingerprint
	h.Sum(f[:0])
	return f
}

// Fingerprint freezes g if needed and returns its content address. Like
// Freeze, it is not safe for concurrent use with mutators or with itself
// on an unfrozen graph; freeze once before sharing.
func (g *Graph) Fingerprint() Fingerprint {
	return g.Freeze().Fingerprint()
}
