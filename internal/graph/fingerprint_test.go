package graph

import (
	"math/rand"
	"testing"
)

// TestFingerprintPresentationInvariance: the same labeled graph must
// fingerprint identically no matter how its edges are presented — shuffled
// order, swapped orientations, duplicates, interleaved self-loops, or a
// different construction path entirely.
func TestFingerprintPresentationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 50
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Intn(4) == 0 {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	want := FromEdgesUnchecked(n, edges).Fingerprint()

	for trial := 0; trial < 10; trial++ {
		perm := append([][2]int(nil), edges...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for i := range perm {
			if rng.Intn(2) == 0 {
				perm[i][0], perm[i][1] = perm[i][1], perm[i][0]
			}
			if rng.Intn(3) == 0 { // duplicate some edges
				perm = append(perm, perm[i])
			}
		}
		perm = append(perm, [2]int{trial % n, trial % n}) // self-loop, dropped
		if got := FromEdgesUnchecked(n, perm).Fingerprint(); got != want {
			t.Fatalf("trial %d: fingerprint changed under edge-presentation permutation:\n got %s\nwant %s", trial, got, want)
		}
	}

	// Incremental AddEdge construction in random order matches too.
	g := New(n)
	perm := append([][2]int(nil), edges...)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	for _, e := range perm {
		g.AddEdge(e[1], e[0])
	}
	if got := g.Fingerprint(); got != want {
		t.Fatalf("AddEdge construction: got %s, want %s", got, want)
	}
}

// TestFingerprintDiscriminates: different labeled graphs get different
// fingerprints — extra isolated vertex, one edge removed, one relabeling.
func TestFingerprintDiscriminates(t *testing.T) {
	base := MustFromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	want := base.Fingerprint()

	bigger := MustFromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if bigger.Fingerprint() == want {
		t.Fatal("adding an isolated vertex should change the fingerprint")
	}
	fewer := MustFromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if fewer.Fingerprint() == want {
		t.Fatal("removing an edge should change the fingerprint")
	}
	// Same structure, different labels: a path 4-3-2-1-0 reversed is the
	// same labeled graph; 0-2-4-1-3 is not.
	relabeled := MustFromEdges(5, [][2]int{{0, 2}, {2, 4}, {4, 1}, {1, 3}})
	if relabeled.Fingerprint() == want {
		t.Fatal("a relabeled (isomorphic but differently labeled) graph should change the fingerprint")
	}
	reversed := MustFromEdges(5, [][2]int{{4, 3}, {3, 2}, {2, 1}, {1, 0}})
	if reversed.Fingerprint() != want {
		t.Fatal("reversed presentation of the same labeled path should not change the fingerprint")
	}
}

// TestFingerprintMutationInvalidation: a mutation after freezing must be
// reflected (Freeze drops the cached CSR on mutation).
func TestFingerprintMutationInvalidation(t *testing.T) {
	g := MustFromEdges(4, [][2]int{{0, 1}, {1, 2}})
	before := g.Fingerprint()
	g.AddEdge(2, 3)
	after := g.Fingerprint()
	if before == after {
		t.Fatal("fingerprint did not change after AddEdge")
	}
	g.RemoveEdge(2, 3)
	if g.Fingerprint() != before {
		t.Fatal("fingerprint did not return to the original after undoing the mutation")
	}
}

func TestFingerprintEmptyAndString(t *testing.T) {
	a, b := New(0).Fingerprint(), New(1).Fingerprint()
	if a == b {
		t.Fatal("empty graphs of different order should differ")
	}
	if len(a.String()) != 64 {
		t.Fatalf("hex fingerprint length = %d, want 64", len(a.String()))
	}
}
