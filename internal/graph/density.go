package graph

// Shallow-minor density estimators. The related-work bounds the paper
// compares against ([18], [12]) are phrased in terms of ∇_r(G), the
// maximum edge density |E(H)|/|V(H)| over depth-r minors H of G. Computing
// ∇_r exactly is NP-hard; these estimators give certified lower bounds
// (witnessed by an explicit subgraph or contraction) that the experiments
// report next to the cited formulas.

// Nabla0LowerBound returns a lower bound on ∇_0(G) — the maximum density
// of a subgraph — via the standard peeling argument: repeatedly remove a
// minimum-degree vertex; the best density seen over all suffixes is at
// least half the true maximum and is exact on many graphs.
func (g *Graph) Nabla0LowerBound() float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	deg := make([]int, n)
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	edges := g.M()
	vertices := n
	best := density(edges, vertices)
	for vertices > 1 {
		// Remove the minimum-degree live vertex.
		min, minDeg := -1, 1<<30
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < minDeg {
				min, minDeg = v, deg[v]
			}
		}
		removed[min] = true
		vertices--
		edges -= minDeg
		for _, u := range g.Neighbors(min) {
			if !removed[u] {
				deg[u]--
			}
		}
		if d := density(edges, vertices); d > best {
			best = d
		}
	}
	return best
}

// Nabla1LowerBound returns a lower bound on ∇_1(G) — the maximum density
// of a depth-1 minor (contract disjoint stars, then take a subgraph) — by
// greedily contracting a maximal matching (every matched pair is a radius-1
// branch set) and peeling the contracted graph.
func (g *Graph) Nabla1LowerBound() float64 {
	// Greedy maximal matching.
	matched := make([]int, g.N())
	for i := range matched {
		matched[i] = -1
	}
	g.VisitEdges(func(u, v int) {
		if matched[u] < 0 && matched[v] < 0 {
			matched[u] = v
			matched[v] = u
		}
	})
	var groups [][]int
	for v := 0; v < g.N(); v++ {
		if matched[v] > v {
			groups = append(groups, []int{v, matched[v]})
		}
	}
	contracted, _ := IdentifyVertices(g, groups)
	d := contracted.Nabla0LowerBound()
	if own := g.Nabla0LowerBound(); own > d {
		d = own // depth-0 minors are depth-1 minors
	}
	return d
}

func density(edges, vertices int) float64 {
	if vertices == 0 {
		return 0
	}
	return float64(edges) / float64(vertices)
}

// Degeneracy returns the degeneracy of g (the smallest k such that every
// subgraph has a vertex of degree at most k), computed by min-degree
// peeling. Degeneracy tightly tracks ∇_0: ∇_0 <= degeneracy <= 2∇_0.
func (g *Graph) Degeneracy() int {
	n := g.N()
	deg := make([]int, n)
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	degeneracy := 0
	for count := 0; count < n; count++ {
		min, minDeg := -1, 1<<30
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < minDeg {
				min, minDeg = v, deg[v]
			}
		}
		if minDeg > degeneracy {
			degeneracy = minDeg
		}
		removed[min] = true
		for _, u := range g.Neighbors(min) {
			if !removed[u] {
				deg[u]--
			}
		}
	}
	return degeneracy
}
