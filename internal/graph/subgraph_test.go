package graph

import (
	"testing"
	"testing/quick"
)

func TestInduced(t *testing.T) {
	g := cycle(6)
	h, idx := g.Induced([]int{0, 1, 2, 4})
	if h.N() != 4 {
		t.Fatalf("Induced N = %d, want 4", h.N())
	}
	if !EqualSets(idx, []int{0, 1, 2, 4}) {
		t.Errorf("idx = %v", idx)
	}
	// Edges 0-1 and 1-2 survive; 4 is isolated inside the subgraph.
	if h.M() != 2 {
		t.Errorf("Induced M = %d, want 2", h.M())
	}
	if h.Degree(3) != 0 { // new index 3 = original vertex 4
		t.Errorf("vertex 4 should be isolated in induced subgraph")
	}
}

func TestInducedDedup(t *testing.T) {
	g := path(4)
	h, idx := g.Induced([]int{2, 0, 2, 1})
	if h.N() != 3 || !EqualSets(idx, []int{0, 1, 2}) {
		t.Errorf("Induced with dups: N=%d idx=%v", h.N(), idx)
	}
}

func TestInducedBall(t *testing.T) {
	g := path(9)
	h, idx := g.InducedBall(4, 2)
	if h.N() != 5 || !EqualSets(idx, []int{2, 3, 4, 5, 6}) {
		t.Fatalf("InducedBall = %v, idx %v", h, idx)
	}
	if h.M() != 4 {
		t.Errorf("InducedBall M = %d, want 4 (path)", h.M())
	}
}

func TestDelete(t *testing.T) {
	g := cycle(5)
	h, idx := g.Delete([]int{0})
	if h.N() != 4 || h.M() != 3 {
		t.Errorf("Delete: n=%d m=%d, want 4, 3", h.N(), h.M())
	}
	if !EqualSets(idx, []int{1, 2, 3, 4}) {
		t.Errorf("idx = %v", idx)
	}
}

func TestContractEdge(t *testing.T) {
	// Contracting one edge of a triangle yields a single edge (loop and
	// parallel edges suppressed).
	g := complete(3)
	h, idx := g.ContractEdge(0, 1)
	if h.N() != 2 || h.M() != 1 {
		t.Errorf("K3 contract: n=%d m=%d, want 2, 1", h.N(), h.M())
	}
	if !EqualSets(idx, []int{0, 2}) {
		t.Errorf("idx = %v", idx)
	}
	// Contracting the middle edge of a path merges neighborhoods.
	p := path(4)
	h2, _ := p.ContractEdge(1, 2)
	if h2.N() != 3 || h2.M() != 2 {
		t.Errorf("path contract: n=%d m=%d, want 3, 2", h2.N(), h2.M())
	}
}

func TestDisjointUnion(t *testing.T) {
	u := DisjointUnion(path(3), cycle(3))
	if u.N() != 6 || u.M() != 5 {
		t.Fatalf("DisjointUnion: n=%d m=%d, want 6, 5", u.N(), u.M())
	}
	if u.HasEdge(2, 3) {
		t.Error("DisjointUnion connected the two parts")
	}
	if !u.HasEdge(3, 4) || !u.HasEdge(3, 5) {
		t.Error("second part edges missing/shifted incorrectly")
	}
}

func TestIdentifyVertices(t *testing.T) {
	// Two disjoint edges; identify one endpoint of each -> path of 3.
	g := MustFromEdges(4, [][2]int{{0, 1}, {2, 3}})
	h, reps := IdentifyVertices(g, [][]int{{1, 2}})
	if h.N() != 3 || h.M() != 2 {
		t.Fatalf("IdentifyVertices: n=%d m=%d, want 3, 2", h.N(), h.M())
	}
	if !EqualSets(reps, []int{0, 1, 3}) {
		t.Errorf("reps = %v", reps)
	}
}

func TestPower(t *testing.T) {
	g := path(5)
	h := g.Power(2)
	// P5 squared: edges at distance 1 or 2: 01 02 12 13 23 24 34 = 7 edges.
	if h.M() != 7 {
		t.Errorf("P5^2 M = %d, want 7", h.M())
	}
	if !h.HasEdge(0, 2) || h.HasEdge(0, 3) {
		t.Error("P5^2 edge set wrong")
	}
}

// Property: Induced on the full vertex set is the identity.
func TestInducedIdentityProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%20) + 1
		g := randomGraph(n, 0.3, seed)
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		h, _ := g.Induced(all)
		return h.Equal(g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: contracting an edge reduces the vertex count by one and keeps
// the graph valid; connectivity is preserved.
func TestContractPreservesConnectivityProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%15) + 3
		g := randomGraph(n, 0.4, seed)
		edges := g.Edges()
		if len(edges) == 0 {
			return true
		}
		e := edges[int(uint(seed)%uint(len(edges)))]
		h, _ := g.ContractEdge(e[0], e[1])
		if h.N() != n-1 || h.Validate() != nil {
			return false
		}
		if g.Connected() && !h.Connected() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
