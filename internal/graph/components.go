package graph

// Components returns the connected components of g as sorted vertex slices,
// ordered by smallest contained vertex.
func (g *Graph) Components() [][]int {
	comp := g.ComponentIDs()
	return groupByComponent(comp)
}

// ComponentIDs labels each vertex with a component ID in 0..k-1, assigned in
// order of smallest contained vertex.
func (g *Graph) ComponentIDs() []int {
	comp := make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for v := 0; v < g.N(); v++ {
		if comp[v] >= 0 {
			continue
		}
		comp[v] = next
		queue := []int{v}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range g.adj[x] {
				if comp[y] < 0 {
					comp[y] = next
					queue = append(queue, y)
				}
			}
		}
		next++
	}
	return comp
}

// NumComponents returns the number of connected components.
func (g *Graph) NumComponents() int {
	ids := g.ComponentIDs()
	max := -1
	for _, id := range ids {
		if id > max {
			max = id
		}
	}
	return max + 1
}

// Connected reports whether g is connected. The empty graph and the
// single-vertex graph are considered connected.
func (g *Graph) Connected() bool {
	return g.N() <= 1 || g.NumComponents() == 1
}

// ComponentsOfSubset returns the connected components of g[s] (the subgraph
// induced by s) as sorted vertex slices in terms of g's vertex labels.
func (g *Graph) ComponentsOfSubset(s []int) [][]int {
	in := make(map[int]bool, len(s))
	for _, v := range s {
		in[v] = true
	}
	seen := make(map[int]bool, len(s))
	var comps [][]int
	for _, v := range s {
		if seen[v] {
			continue
		}
		seen[v] = true
		comp := []int{v}
		queue := []int{v}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range g.adj[x] {
				if in[y] && !seen[y] {
					seen[y] = true
					comp = append(comp, y)
					queue = append(queue, y)
				}
			}
		}
		sortInts(comp)
		comps = append(comps, comp)
	}
	return comps
}

// RComponents returns the r-components of s (§3 of the paper): the maximal
// subsets of s whose vertices are chained by hops of distance at most r in
// g. Equivalently, the connected components of the r-th power of g induced
// on s. Components are returned as sorted slices ordered by smallest vertex.
func (g *Graph) RComponents(s []int, r int) [][]int {
	if r < 1 {
		r = 1
	}
	in := make(map[int]bool, len(s))
	for _, v := range s {
		in[v] = true
	}
	seen := make(map[int]bool, len(s))
	var comps [][]int
	for _, v := range s {
		if seen[v] {
			continue
		}
		seen[v] = true
		comp := []int{v}
		queue := []int{v}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range g.Ball(x, r) {
				if in[y] && !seen[y] {
					seen[y] = true
					comp = append(comp, y)
					queue = append(queue, y)
				}
			}
		}
		sortInts(comp)
		comps = append(comps, comp)
	}
	return comps
}

func groupByComponent(comp []int) [][]int {
	max := -1
	for _, id := range comp {
		if id > max {
			max = id
		}
	}
	out := make([][]int, max+1)
	for v, id := range comp {
		out[id] = append(out[id], v)
	}
	return out
}
