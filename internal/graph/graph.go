// Package graph provides the undirected-graph substrate used throughout the
// localmds repository: adjacency-list graphs, traversals, neighborhood balls,
// connectivity queries, twin reduction, and serialization.
//
// Vertices are dense integers 0..n-1. All graphs are simple (no loops, no
// multi-edges) and undirected. Mutating constructors normalize edge input;
// accessors never mutate. The package is deliberately dependency-free so that
// every other substrate (cuts, spqr, minor, local, ...) can build on it.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over vertices 0..n-1 stored as sorted
// adjacency lists. The zero value is the empty graph. Freeze caches a flat
// CSR view for traversal-heavy read paths; any mutation drops the cache.
type Graph struct {
	adj [][]int
	m   int
	csr *CSR
}

// New returns an edgeless graph on n vertices. It panics if n is negative.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Graph{adj: make([][]int, n)}
}

// FromEdges builds a graph on n vertices from the given edge list.
// Duplicate edges and self-loops are rejected with an error so that
// generator bugs surface early.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdgeChecked(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// MustFromEdges is FromEdges for static test fixtures; it panics on error.
func MustFromEdges(n int, edges [][2]int) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// HasEdge reports whether the edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return false
	}
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// AddEdge inserts the undirected edge {u, v}, ignoring the request if the
// edge already exists. It panics on out-of-range endpoints or self-loops.
func (g *Graph) AddEdge(u, v int) {
	if err := g.addEdge(u, v, true); err != nil {
		panic(err)
	}
}

// AddEdgeChecked inserts the undirected edge {u, v} and returns an error on
// out-of-range endpoints, self-loops, or duplicate edges.
func (g *Graph) AddEdgeChecked(u, v int) error {
	return g.addEdge(u, v, false)
}

func (g *Graph) addEdge(u, v int, allowDup bool) error {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, len(g.adj))
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if g.HasEdge(u, v) {
		if allowDup {
			return nil
		}
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	g.m++
	g.csr = nil
	return nil
}

// RemoveEdge deletes the undirected edge {u, v} if present and reports
// whether it was present.
func (g *Graph) RemoveEdge(u, v int) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	g.adj[u] = removeSorted(g.adj[u], v)
	g.adj[v] = removeSorted(g.adj[v], u)
	g.m--
	g.csr = nil
	return true
}

// AddVertex appends an isolated vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	g.csr = nil
	return len(g.adj) - 1
}

// Neighbors returns the sorted adjacency list of v. The returned slice is
// owned by the graph; callers must not modify it.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum degree, or 0 for the empty graph.
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	min := len(g.adj[0])
	for v := range g.adj {
		if d := len(g.adj[v]); d < min {
			min = d
		}
	}
	return min
}

// Edges returns all edges as pairs (u, v) with u < v, in lexicographic order.
func (g *Graph) Edges() [][2]int {
	edges := make([][2]int, 0, g.m)
	g.VisitEdges(func(u, v int) {
		edges = append(edges, [2]int{u, v})
	})
	return edges
}

// VisitEdges calls fn for every edge (u, v) with u < v, in lexicographic
// order, without materializing an edge list. Prefer it over Edges in
// per-call paths that only need to scan the edges once.
func (g *Graph) VisitEdges(fn func(u, v int)) {
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if u < v {
				fn(u, v)
			}
		}
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]int, len(g.adj)), m: g.m}
	for v, a := range g.adj {
		c.adj[v] = append([]int(nil), a...)
	}
	return c
}

// Equal reports whether g and h have identical vertex counts and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for v := range g.adj {
		if len(g.adj[v]) != len(h.adj[v]) {
			return false
		}
		for i, u := range g.adj[v] {
			if h.adj[v][i] != u {
				return false
			}
		}
	}
	return true
}

// Complement returns the complement graph on the same vertex set.
func (g *Graph) Complement() *Graph {
	n := g.N()
	c := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) {
				c.AddEdge(u, v)
			}
		}
	}
	return c
}

// Density returns |E| / |V|, the average number of edges per vertex
// (half the average degree). It returns 0 for the empty graph.
func (g *Graph) Density() float64 {
	if g.N() == 0 {
		return 0
	}
	return float64(g.m) / float64(g.N())
}

// String renders a compact human-readable description.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.N(), g.M())
}

// Validate checks internal invariants (sorted lists, symmetry, no loops,
// consistent edge count). It is used by property tests and returns the first
// violation found.
func (g *Graph) Validate() error {
	count := 0
	for v, a := range g.adj {
		for i, u := range a {
			if u < 0 || u >= len(g.adj) {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if u == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && a[i-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
			if !g.HasEdge(u, v) {
				return fmt.Errorf("graph: asymmetric edge {%d,%d}", v, u)
			}
			count++
		}
	}
	if count != 2*g.m {
		return fmt.Errorf("graph: edge count %d inconsistent with adjacency total %d", g.m, count)
	}
	return nil
}

func insertSorted(a []int, x int) []int {
	i := sort.SearchInts(a, x)
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = x
	return a
}

func removeSorted(a []int, x int) []int {
	i := sort.SearchInts(a, x)
	if i < len(a) && a[i] == x {
		return append(a[:i], a[i+1:]...)
	}
	return a
}
