package graph

import (
	"math"
	"slices"
)

// CSR-native traversal operations. Everything in this file runs over the
// frozen flat arrays of a CSR and keeps its scratch state in an Arena, so
// hot consumers (the Algorithm 1 pipeline, the cut enumerators, the
// per-component solvers) never fall back to the allocating Graph accessors
// (Neighbors, Ball, Induced, Edges) inside their inner loops.

// Arena is reusable scratch for CSR traversals: a stamped visited array, a
// BFS queue and distance array, a stamped position map for induced-subgraph
// relabeling, and a component-label array. Arenas grow on demand and are
// sized to the largest CSR they have served, so a long-lived Arena makes
// repeated traversals allocation-free.
//
// An Arena is not safe for concurrent use; give each goroutine its own.
// Each operation taking an Arena invalidates the arena-owned outputs of the
// previous operation (appended dst slices are caller-owned and stay valid).
type Arena struct {
	mark  []int32 // visited iff mark[v] == stamp
	stamp int32
	dist  []int32 // BFS distance, valid where mark[v] == stamp
	queue []int32

	pos     []int32 // induced relabel map, valid where posMark[v] == posGen
	posMark []int32
	posGen  int32

	labels []int32 // ComponentLabels output
}

// NewArena returns an empty Arena; it grows to fit the graphs it serves.
func NewArena() *Arena { return &Arena{} }

// growMark ensures the visited/dist/queue arrays cover n vertices.
func (a *Arena) growMark(n int) {
	if len(a.mark) < n {
		a.mark = make([]int32, n)
		a.dist = make([]int32, n)
		a.stamp = 0
	}
	if cap(a.queue) < n {
		a.queue = make([]int32, 0, n)
	}
}

// nextMark starts a fresh visited generation.
func (a *Arena) nextMark() int32 {
	if a.stamp == math.MaxInt32 {
		for i := range a.mark {
			a.mark[i] = 0
		}
		a.stamp = 0
	}
	a.stamp++
	return a.stamp
}

// growPos ensures the position-map arrays cover n vertices.
func (a *Arena) growPos(n int) {
	if len(a.pos) < n {
		a.pos = make([]int32, n)
		a.posMark = make([]int32, n)
		a.posGen = 0
	}
}

// nextPos starts a fresh position-map generation.
func (a *Arena) nextPos() int32 {
	if a.posGen == math.MaxInt32 {
		for i := range a.posMark {
			a.posMark[i] = 0
		}
		a.posGen = 0
	}
	a.posGen++
	return a.posGen
}

// boundedBFS runs a multi-source BFS truncated at radius r (r < 0 means
// unbounded) and returns the reached vertices in BFS order as a view into
// the arena queue. Distances are in a.dist under the current mark.
func (c *CSR) boundedBFS(sources []int32, r int, a *Arena) []int32 {
	n := c.N()
	a.growMark(n)
	stamp := a.nextMark()
	q := a.queue[:0]
	for _, s := range sources {
		if a.mark[s] != stamp {
			a.mark[s] = stamp
			a.dist[s] = 0
			q = append(q, s)
		}
	}
	offs, tgts := c.Offsets, c.Targets
	for head := 0; head < len(q); head++ {
		v := q[head]
		d := a.dist[v]
		if int(d) == r {
			continue
		}
		for k := offs[v]; k < offs[v+1]; k++ {
			u := tgts[k]
			if a.mark[u] != stamp {
				a.mark[u] = stamp
				a.dist[u] = d + 1
				q = append(q, u)
			}
		}
	}
	a.queue = q[:0:cap(q)]
	return q
}

// AppendBall appends N^r[v] (all vertices at distance at most r from v) to
// dst in ascending order and returns the extended slice.
func (c *CSR) AppendBall(dst []int32, v, r int, a *Arena) []int32 {
	return c.appendReached(dst, []int32{int32(v)}, r, a)
}

// AppendBallOfSet appends N^r[sources] to dst in ascending order.
func (c *CSR) AppendBallOfSet(dst []int32, sources []int32, r int, a *Arena) []int32 {
	return c.appendReached(dst, sources, r, a)
}

func (c *CSR) appendReached(dst []int32, sources []int32, r int, a *Arena) []int32 {
	start := len(dst)
	dst = append(dst, c.boundedBFS(sources, r, a)...)
	slices.Sort(dst[start:])
	return dst
}

// AppendClosed appends the closed neighborhood N[v] = {v} ∪ N(v) to dst in
// ascending order and returns the extended slice.
func (c *CSR) AppendClosed(dst []int32, v int) []int32 {
	row := c.Row(v)
	self := int32(v)
	placed := false
	for _, u := range row {
		if !placed && self < u {
			dst = append(dst, self)
			placed = true
		}
		dst = append(dst, u)
	}
	if !placed {
		dst = append(dst, self)
	}
	return dst
}

// ClosedSubset reports whether N[v] ⊆ N[u] (closed neighborhoods in c),
// without materializing either set.
func (c *CSR) ClosedSubset(v, u int) bool {
	rv, ru := c.Row(v), c.Row(u)
	i, j := 0, 0
	iv, iu := int32(v), int32(u)
	next := func(row []int32, k *int, self int32, emitted *bool) (int32, bool) {
		// Merge self into the sorted row on the fly.
		if !*emitted && (*k >= len(row) || self < row[*k]) {
			*emitted = true
			return self, true
		}
		if *k < len(row) {
			x := row[*k]
			*k++
			return x, true
		}
		return 0, false
	}
	var doneV, doneU bool
	xv, okv := next(rv, &i, iv, &doneV)
	xu, oku := next(ru, &j, iu, &doneU)
	for okv {
		if !oku {
			return false
		}
		switch {
		case xv == xu:
			xv, okv = next(rv, &i, iv, &doneV)
			xu, oku = next(ru, &j, iu, &doneU)
		case xv > xu:
			xu, oku = next(ru, &j, iu, &doneU)
		default:
			return false
		}
	}
	return true
}

// InducedInto builds the induced subgraph c[verts] into out, reusing out's
// backing arrays. verts must be sorted ascending and duplicate-free; vertex
// i of the result is verts[i] (the relabeling is monotone, so rows stay
// sorted). The position map lives in the arena and is consumed by the call.
func (c *CSR) InducedInto(out *CSR, verts []int32, a *Arena) {
	a.growPos(c.N())
	gen := a.nextPos()
	for i, v := range verts {
		a.pos[v] = int32(i)
		a.posMark[v] = gen
	}
	if cap(out.Offsets) < len(verts)+1 {
		out.Offsets = make([]int32, 0, len(verts)+1)
	}
	out.Offsets = append(out.Offsets[:0], 0)
	out.Targets = out.Targets[:0]
	for _, v := range verts {
		for _, u := range c.Row(int(v)) {
			if a.posMark[u] == gen {
				out.Targets = append(out.Targets, a.pos[u])
			}
		}
		out.Offsets = append(out.Offsets, int32(len(out.Targets)))
	}
}

// SubsetComponents returns the connected components of c[members] in terms
// of c's labels: each component sorted ascending, components ordered by
// smallest member. members must be sorted ascending and duplicate-free.
// The component slices are freshly allocated (they outlive the arena); the
// traversal itself is arena-scratch only.
func (c *CSR) SubsetComponents(members []int32, a *Arena) [][]int32 {
	a.growPos(c.N())
	gen := a.nextPos()
	for _, v := range members {
		a.posMark[v] = gen
	}
	a.growMark(c.N())
	stamp := a.nextMark()
	var comps [][]int32
	offs, tgts := c.Offsets, c.Targets
	for _, v := range members {
		if a.mark[v] == stamp {
			continue
		}
		a.mark[v] = stamp
		comp := []int32{v}
		for head := 0; head < len(comp); head++ {
			x := comp[head]
			for k := offs[x]; k < offs[x+1]; k++ {
				y := tgts[k]
				if a.posMark[y] == gen && a.mark[y] != stamp {
					a.mark[y] = stamp
					comp = append(comp, y)
				}
			}
		}
		slices.Sort(comp)
		comps = append(comps, comp)
	}
	return comps
}

// ConnectedWithout reports whether c - {x} is connected. Graphs with at
// most one remaining vertex count as connected. For a connected c this is
// the cut-vertex test: x is a cut vertex iff ConnectedWithout(x) is false.
func (c *CSR) ConnectedWithout(x int, a *Arena) bool {
	n := c.N()
	if n <= 2 {
		return true
	}
	a.growMark(n)
	stamp := a.nextMark()
	a.mark[x] = stamp // pre-mark the excluded vertex so BFS never enters it
	start := 0
	if start == x {
		start = 1
	}
	a.mark[start] = stamp
	q := a.queue[:0]
	q = append(q, int32(start))
	reached := 1
	offs, tgts := c.Offsets, c.Targets
	for head := 0; head < len(q); head++ {
		v := q[head]
		for k := offs[v]; k < offs[v+1]; k++ {
			u := tgts[k]
			if a.mark[u] != stamp {
				a.mark[u] = stamp
				reached++
				q = append(q, u)
			}
		}
	}
	a.queue = q[:0:cap(q)]
	return reached == n-1
}

// ComponentLabels labels the connected components of c - {u, v}: the
// returned slice has -1 at u and v and component IDs 0..k-1 elsewhere,
// assigned in order of smallest contained vertex; k is returned alongside.
// Pass v = -1 to exclude only u, and u = v = -1 to exclude nothing. The
// label slice is arena-owned and valid until the next ComponentLabels call
// on the same arena.
func (c *CSR) ComponentLabels(u, v int, a *Arena) ([]int32, int) {
	n := c.N()
	if len(a.labels) < n {
		a.labels = make([]int32, n)
	}
	labels := a.labels[:n]
	for i := range labels {
		labels[i] = -2
	}
	if u >= 0 {
		labels[u] = -1
	}
	if v >= 0 {
		labels[v] = -1
	}
	a.growMark(n)
	offs, tgts := c.Offsets, c.Targets
	num := int32(0)
	q := a.queue[:0]
	for s := 0; s < n; s++ {
		if labels[s] != -2 {
			continue
		}
		labels[s] = num
		q = append(q[:0], int32(s))
		for head := 0; head < len(q); head++ {
			x := q[head]
			for k := offs[x]; k < offs[x+1]; k++ {
				y := tgts[k]
				if labels[y] == -2 {
					labels[y] = num
					q = append(q, y)
				}
			}
		}
		num++
	}
	a.queue = q[:0:cap(q)]
	return labels, int(num)
}

// Eccentricity returns the maximum distance from v to any reachable vertex.
func (c *CSR) Eccentricity(v int, a *Arena) int {
	reached := c.boundedBFS([]int32{int32(v)}, -1, a)
	ecc := int32(0)
	for _, u := range reached {
		if d := a.dist[u]; d > ecc {
			ecc = d
		}
	}
	return int(ecc)
}

// Diameter returns the largest eccentricity over all vertices, considering
// only reachable pairs — allocation-free given a warm arena.
func (c *CSR) Diameter(a *Arena) int {
	diam := 0
	for v := 0; v < c.N(); v++ {
		if e := c.Eccentricity(v, a); e > diam {
			diam = e
		}
	}
	return diam
}

// FromCSR builds an adjacency-list Graph from a CSR in O(n + m) with two
// allocations (the row table and one shared backing buffer). It bridges
// CSR-first pipelines to solvers that still want a *Graph (the treewidth
// DPs); the result does not alias c.
func FromCSR(c *CSR) *Graph {
	n := c.N()
	buf := make([]int, len(c.Targets))
	for i, t := range c.Targets {
		buf[i] = int(t)
	}
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		adj[v] = buf[c.Offsets[v]:c.Offsets[v+1]:c.Offsets[v+1]]
	}
	return &Graph{adj: adj, m: len(c.Targets) / 2}
}
