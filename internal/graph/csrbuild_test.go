package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// equalCSR reports bit-identical frozen views.
func equalCSR(a, b *CSR) bool {
	if len(a.Offsets) != len(b.Offsets) || len(a.Targets) != len(b.Targets) {
		return false
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			return false
		}
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			return false
		}
	}
	return true
}

// randomEdgeSoup draws a messy edge list: duplicates in both orientations,
// self-loops, repeated vertices — everything the tolerant batch builders
// must collapse.
func randomEdgeSoup(n, m int, rng *rand.Rand) [][2]int {
	edges := make([][2]int, m)
	for i := range edges {
		switch rng.Intn(10) {
		case 0: // self-loop
			v := rng.Intn(n)
			edges[i] = [2]int{v, v}
		case 1: // duplicate of an earlier edge, maybe flipped
			if i > 0 {
				e := edges[rng.Intn(i)]
				if rng.Intn(2) == 0 {
					e[0], e[1] = e[1], e[0]
				}
				edges[i] = e
				continue
			}
			fallthrough
		default:
			edges[i] = [2]int{rng.Intn(n), rng.Intn(n)}
		}
	}
	return edges
}

// Property: CSRFromEdges is bit-identical to the adjacency-list route
// FromEdgesUnchecked(...).Freeze() on arbitrary messy edge lists.
func TestCSRFromEdgesMatchesFreeze(t *testing.T) {
	f := func(seed int64, rawN uint8, rawM uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%64) + 1
		m := int(rawM % 512)
		edges := randomEdgeSoup(n, m, rng)
		want := FromEdgesUnchecked(n, edges).Freeze()
		got := CSRFromEdges(n, edges)
		return equalCSR(got, want) && got.Fingerprint() == want.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the chunked build depends only on the concatenated edge list,
// never on the chunk boundaries.
func TestCSRFromEdgeChunksChunkingInvariance(t *testing.T) {
	f := func(seed int64, rawN uint8, rawM uint16, rawK uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%64) + 1
		m := int(rawM % 512)
		edges := randomEdgeSoup(n, m, rng)
		want := CSRFromEdges(n, edges)
		k := int(rawK%7) + 1
		var chunks [][][2]int
		for lo := 0; lo < len(edges); {
			hi := lo + rng.Intn(len(edges)/k+1) + 1
			if hi > len(edges) {
				hi = len(edges)
			}
			chunks = append(chunks, edges[lo:hi])
			lo = hi
		}
		return equalCSR(CSRFromEdgeChunks(n, chunks), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCSRFromEdgesEmptyAndIsolated(t *testing.T) {
	c := CSRFromEdges(0, nil)
	if c.N() != 0 || len(c.Targets) != 0 {
		t.Fatalf("empty graph: n=%d arcs=%d", c.N(), len(c.Targets))
	}
	c = CSRFromEdges(5, nil)
	if c.N() != 5 || len(c.Targets) != 0 {
		t.Fatalf("isolated vertices: n=%d arcs=%d", c.N(), len(c.Targets))
	}
	want := FromEdgesUnchecked(5, nil).Freeze()
	if c.Fingerprint() != want.Fingerprint() {
		t.Fatal("isolated-vertex fingerprint mismatch")
	}
}

func TestCSRFromEdgesPanicsLikeAddEdge(t *testing.T) {
	for _, bad := range [][2]int{{-1, 0}, {0, 3}, {7, 7}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("edge %v out of range [0,3) did not panic", bad)
				}
			}()
			CSRFromEdges(3, [][2]int{bad})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative vertex count did not panic")
			}
		}()
		CSRFromEdges(-1, nil)
	}()
}
