package graph

// TwinReduceCSR computes the true-twin reduction of a frozen CSR view: the
// CSR of the twin-less graph G⁻ plus the mapping from reduced indices to
// original labels — the same pair TwinReduction returns, without ever
// materializing an adjacency-list *Graph. It exists for the huge-graph
// path, where the input arrives as a (possibly mmap-backed, read-only) CSR
// and a Clone-based reduction would double peak RSS before the solver
// runs.
//
// True twins are necessarily adjacent (v ∈ N[v] = N[u]), so the scan only
// compares adjacent pairs of equal degree — O(m·Δ) worst case, near-linear
// on the sparse workloads — and groups them with a union-find, since
// closed-neighborhood equality is transitive. Like TwinReduction it keeps
// the smallest vertex of each class and iterates to a fixpoint (removing
// twins can create new twins). When g has no true twins the input CSR is
// returned as-is (not a copy); c is never mutated.
func TwinReduceCSR(c *CSR) (*CSR, []int) {
	cur := c
	mapping := make([]int, c.N())
	for i := range mapping {
		mapping[i] = i
	}
	a := NewArena()
	for {
		reps, shrunk := twinClassReps(cur)
		if !shrunk {
			return cur, mapping
		}
		next := &CSR{}
		cur.InducedInto(next, reps, a)
		newMapping := make([]int, len(reps))
		for i, v := range reps {
			newMapping[i] = mapping[v]
		}
		cur, mapping = next, newMapping
	}
}

// twinClassReps returns the smallest member of every true-twin class of c,
// ascending, and whether any class has more than one member. When nothing
// shrinks it returns (nil, false) so the caller can keep c unchanged.
func twinClassReps(c *CSR) ([]int32, bool) {
	n := c.N()
	d := NewDSU(n)
	for v := 0; v < n; v++ {
		rv := c.Row(v)
		for _, u32 := range rv {
			u := int(u32)
			if u <= v || c.Degree(u) != len(rv) || d.Same(v, u) {
				continue
			}
			if closedEqualCSR(c, v, u) {
				d.Union(v, u)
			}
		}
	}
	if d.SetCount() == n {
		return nil, false
	}
	reps := make([]int32, 0, d.SetCount())
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		if r := d.Find(v); !seen[r] {
			// v ascending, so the first member seen of each class is its
			// smallest — the representative TwinReduction keeps.
			seen[r] = true
			reps = append(reps, int32(v))
		}
	}
	return reps, true
}

// closedEqualCSR reports whether N[v] = N[u] (closed neighborhoods in c),
// merging each vertex into its own sorted row on the fly.
func closedEqualCSR(c *CSR, v, u int) bool {
	rv, ru := c.Row(v), c.Row(u)
	iv, iu := int32(v), int32(u)
	i, j := 0, 0
	doneV, doneU := false, false
	next := func(row []int32, k *int, self int32, emitted *bool) (int32, bool) {
		if !*emitted && (*k >= len(row) || self < row[*k]) {
			*emitted = true
			return self, true
		}
		if *k < len(row) {
			x := row[*k]
			*k++
			return x, true
		}
		return 0, false
	}
	for {
		xv, okv := next(rv, &i, iv, &doneV)
		xu, oku := next(ru, &j, iu, &doneU)
		if okv != oku {
			return false
		}
		if !okv {
			return true
		}
		if xv != xu {
			return false
		}
	}
}
