package graph

import (
	"testing"
	"testing/quick"
)

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components() returned %d comps, want 3", len(comps))
	}
	if !EqualSets(comps[0], []int{0, 1, 2}) {
		t.Errorf("comps[0] = %v", comps[0])
	}
	if !EqualSets(comps[1], []int{3}) {
		t.Errorf("comps[1] = %v", comps[1])
	}
	if !EqualSets(comps[2], []int{4, 5}) {
		t.Errorf("comps[2] = %v", comps[2])
	}
}

func TestConnected(t *testing.T) {
	if !path(5).Connected() {
		t.Error("path(5) not Connected")
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Error("trivial graphs not Connected")
	}
	if New(2).Connected() {
		t.Error("two isolated vertices reported Connected")
	}
}

func TestComponentsOfSubset(t *testing.T) {
	g := path(7)
	// Removing vertex 3 splits {0..2} from {4..6}.
	comps := g.ComponentsOfSubset([]int{0, 1, 2, 4, 5, 6})
	if len(comps) != 2 {
		t.Fatalf("got %d comps, want 2", len(comps))
	}
	if !EqualSets(comps[0], []int{0, 1, 2}) || !EqualSets(comps[1], []int{4, 5, 6}) {
		t.Errorf("comps = %v", comps)
	}
}

func TestRComponents(t *testing.T) {
	g := path(10)
	// S = {0, 2, 7}: with r = 2, {0,2} chain together, 7 is alone.
	comps := g.RComponents([]int{0, 2, 7}, 2)
	if len(comps) != 2 {
		t.Fatalf("got %d r-components, want 2: %v", len(comps), comps)
	}
	if !EqualSets(comps[0], []int{0, 2}) || !EqualSets(comps[1], []int{7}) {
		t.Errorf("comps = %v", comps)
	}
	// With r = 5 everything chains together.
	comps = g.RComponents([]int{0, 2, 7}, 5)
	if len(comps) != 1 {
		t.Errorf("r=5: got %d r-components, want 1", len(comps))
	}
}

// Property: r-components of V(G) with r = 1 are exactly the connected
// components.
func TestRComponentsMatchComponentsProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%25) + 1
		g := randomGraph(n, 0.12, seed)
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		rcomps := g.RComponents(all, 1)
		comps := g.Components()
		if len(rcomps) != len(comps) {
			return false
		}
		for i := range comps {
			if !EqualSets(rcomps[i], comps[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the number of r-components is non-increasing in r.
func TestRComponentsMonotoneProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%20) + 2
		g := randomGraph(n, 0.1, seed)
		s := []int{}
		for v := 0; v < n; v += 2 {
			s = append(s, v)
		}
		prev := len(s) + 1
		for r := 1; r <= n; r++ {
			k := len(g.RComponents(s, r))
			if k > prev {
				return false
			}
			prev = k
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
