package graph_test

import (
	"math/rand"
	"testing"

	"localmds/internal/gen"
	"localmds/internal/graph"
)

// CSR-vs-adjacency BFS benchmarks: the same graphs traversed through the
// sorted adjacency lists and through the frozen flat-array view. Run with
// -benchmem to see that either path allocates only dist + queue. The grid
// pair measures the low-degree regime, the GNP pair the denser one where
// the flat arrays pay off.

func benchBFS(b *testing.B, g *graph.Graph) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist := g.BFSFrom(i % g.N())
		if dist[0] < 0 && i%g.N() == 0 {
			b.Fatal("unreachable source")
		}
	}
}

func BenchmarkBFSFromAdjacency(b *testing.B) {
	benchBFS(b, gen.Grid(100, 100))
}

func BenchmarkBFSFromCSR(b *testing.B) {
	g := gen.Grid(100, 100)
	g.Freeze()
	benchBFS(b, g)
}

func denseGNP() *graph.Graph {
	return gen.GNPConnected(4000, 0.005, rand.New(rand.NewSource(1)))
}

func BenchmarkBFSFromAdjacencyDense(b *testing.B) {
	benchBFS(b, denseGNP())
}

func BenchmarkBFSFromCSRDense(b *testing.B) {
	g := denseGNP()
	g.Freeze()
	benchBFS(b, g)
}
