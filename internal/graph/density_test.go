package graph

import (
	"testing"
	"testing/quick"
)

func TestNabla0LowerBoundKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want float64
	}{
		{"K4", complete(4), 1.5}, // 6 edges / 4 vertices
		{"C6", cycle(6), 1.0},    // cycle density 1
		{"P5", path(5), 0.8},     // 4/5
		{"empty", New(3), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.g.Nabla0LowerBound()
			if got < tt.want-1e-9 {
				t.Errorf("Nabla0LowerBound = %v, want >= %v", got, tt.want)
			}
		})
	}
}

func TestNabla0DetectsDenseCore(t *testing.T) {
	// A K5 with a long pendant path: the global density is diluted but the
	// peeling must find the K5 core (density 2).
	g := complete(5)
	prev := 0
	for i := 0; i < 20; i++ {
		v := g.AddVertex()
		g.AddEdge(prev, v)
		prev = v
	}
	if got := g.Nabla0LowerBound(); got < 2.0-1e-9 {
		t.Errorf("Nabla0LowerBound = %v, want 2.0 (K5 core)", got)
	}
}

func TestNabla1AtLeastNabla0Property(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%20) + 2
		g := randomGraph(n, 0.25, seed)
		return g.Nabla1LowerBound() >= g.Nabla0LowerBound()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNabla1GridContraction(t *testing.T) {
	// Contracting a perfect matching of a large grid increases density
	// beyond the grid's own ~2 - o(1)... at least it must not decrease.
	g := New(36)
	id := func(r, c int) int { return r*6 + c }
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			if c+1 < 6 {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < 6 {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	if got, floor := g.Nabla1LowerBound(), g.Nabla0LowerBound(); got < floor {
		t.Errorf("Nabla1 = %v below Nabla0 = %v", got, floor)
	}
}

func TestDegeneracy(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"tree", path(7), 1},
		{"cycle", cycle(8), 2},
		{"K5", complete(5), 4},
		{"isolated", New(4), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Degeneracy(); got != tt.want {
				t.Errorf("Degeneracy = %d, want %d", got, tt.want)
			}
		})
	}
}

// Property: ∇_0 <= degeneracy <= 2∇_0 + 1 (the standard sandwich, slack 1
// for rounding).
func TestDegeneracySandwichProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%18) + 2
		g := randomGraph(n, 0.3, seed)
		nab := g.Nabla0LowerBound()
		d := float64(g.Degeneracy())
		return nab <= d+1e-9 && d <= 2*nab+1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
