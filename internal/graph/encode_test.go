package graph

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONRoundTrip(t *testing.T) {
	g := cycle(5)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var h Graph
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !g.Equal(&h) {
		t.Errorf("round trip lost data: %s vs %s", g, &h)
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"loop", `{"n":2,"edges":[[0,0]]}`},
		{"range", `{"n":2,"edges":[[0,5]]}`},
		{"dup", `{"n":3,"edges":[[0,1],[1,0]]}`},
		{"garbage", `{"n":`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(tt.in)); err == nil {
				t.Errorf("ReadJSON(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestWriteReadJSON(t *testing.T) {
	g := complete(4)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	h, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !g.Equal(h) {
		t.Error("WriteJSON/ReadJSON round trip mismatch")
	}
}

func TestDOT(t *testing.T) {
	g := path(3)
	dot := g.DOT("p3", []int{1})
	for _, want := range []string{"graph p3 {", "0 -- 1;", "1 -- 2;", "fillcolor=gold"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Name sanitization.
	dot = g.DOT("my graph!", nil)
	if !strings.Contains(dot, "graph my_graph_ {") {
		t.Errorf("DOT name not sanitized:\n%s", dot)
	}
	if !strings.Contains(New(0).DOT("", nil), "graph G {") {
		t.Error("empty DOT name should default to G")
	}
}

// Property: JSON round trip is the identity for random graphs.
func TestJSONRoundTripProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%20) + 1
		g := randomGraph(n, 0.3, seed)
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		var h Graph
		if err := json.Unmarshal(data, &h); err != nil {
			return false
		}
		return g.Equal(&h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
