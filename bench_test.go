// Package localmds_test holds the benchmark harness: one testing.B target
// per evaluation artifact (the paper's Table 1 rows, the per-lemma
// measurements, and the simulator itself). Benchmarks report the measured
// approximation ratios and round counts via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the paper's evaluation in one
// run; EXPERIMENTS.md records the resulting numbers.
package localmds_test

import (
	"math/rand"
	"testing"

	"localmds/internal/asdim"
	"localmds/internal/core"
	"localmds/internal/cuts"
	"localmds/internal/ding"
	"localmds/internal/experiments"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/local"
	"localmds/internal/mds"
	"localmds/internal/minor"
	"localmds/internal/spqr"
)

// reportRatio attaches sol/opt as the "ratio" metric.
func reportRatio(b *testing.B, sol, opt int) {
	b.Helper()
	if opt > 0 {
		b.ReportMetric(float64(sol)/float64(opt), "ratio")
	}
}

// BenchmarkTable1Trees measures the folklore tree algorithm (Table 1 row
// "trees": 3-approx, 2 rounds).
func BenchmarkTable1Trees(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := gen.RandomTree(150, rng)
	opt, err := mds.ExactMDS(g)
	if err != nil {
		b.Fatal(err)
	}
	var sol []int
	for i := 0; i < b.N; i++ {
		sol = core.TreeMDS(g)
	}
	reportRatio(b, len(sol), len(opt))
	_, stats, err := core.RunTreeMDS(g, nil, local.Sequential)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(stats.Rounds), "rounds")
}

// BenchmarkTable1Outerplanar measures Algorithm 1 on maximal outerplanar
// graphs (Table 1 row "outerplanar": 5-approx, 2 rounds in [4]).
func BenchmarkTable1Outerplanar(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := gen.MaximalOuterplanar(100, rng)
	opt, err := mds.ExactMDS(g)
	if err != nil {
		b.Fatal(err)
	}
	var res *core.Alg1Result
	for i := 0; i < b.N; i++ {
		res, err = core.Alg1(g, core.PracticalParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRatio(b, len(res.S), len(opt))
	b.ReportMetric(float64(res.RoundsEstimate), "rounds_est")
}

// BenchmarkTable1K1t measures the take-all algorithm on bounded-degree
// graphs (Table 1 row "K_{1,t}": t-approx, 0 rounds).
func BenchmarkTable1K1t(b *testing.B) {
	g, err := gen.RegularLike(120, 4)
	if err != nil {
		b.Fatal(err)
	}
	opt, err := mds.ExactMDS(g)
	if err != nil {
		b.Fatal(err)
	}
	var sol []int
	for i := 0; i < b.N; i++ {
		sol = core.TakeAllMDS(g)
	}
	reportRatio(b, len(sol), len(opt))
}

// BenchmarkTable1K2tLinear measures Theorem 4.4 (Table 1 row "K_{2,t}":
// (2t-1)-approx, 3 rounds) on Ding-structure instances, t = 5.
func BenchmarkTable1K2tLinear(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 120, T: 5}, rng)
	opt, err := mds.ExactMDS(g)
	if err != nil {
		b.Fatal(err)
	}
	var res *core.D2Result
	for i := 0; i < b.N; i++ {
		res = core.D2(g)
	}
	reportRatio(b, len(res.S), len(opt))
	small := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 40, T: 5}, rng)
	_, stats, err := core.RunD2(small, nil, local.Sequential)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(stats.Rounds), "rounds")
}

// BenchmarkTable1K2tConst measures Theorem 4.1 / Algorithm 1 (Table 1 row
// "K_{2,t}": 50-approx, O_t(1) rounds) on Ding-structure instances, t = 5.
func BenchmarkTable1K2tConst(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 120, T: 5}, rng)
	opt, err := mds.ExactMDS(g)
	if err != nil {
		b.Fatal(err)
	}
	var res *core.Alg1Result
	for i := 0; i < b.N; i++ {
		res, err = core.Alg1(g, core.PracticalParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRatio(b, len(res.S), len(opt))
	b.ReportMetric(float64(res.RoundsEstimate), "rounds_est")
	b.ReportMetric(float64(res.MaxComponentDiameter), "max_comp_diam")
}

// BenchmarkTable1OtherClasses runs Algorithm 2 with an asdim-2 control
// function on grids, standing in for the K_{s,t}/K_t rows whose cited
// bounds are astronomical.
func BenchmarkTable1OtherClasses(b *testing.B) {
	// 10x10: grids are the exact solver's worst case; the bitset engine
	// proves this OPT in ~0.1s where the old search was capped at 7x7.
	g := gen.Grid(10, 10)
	opt, err := mds.ExactMDS(g)
	if err != nil {
		b.Fatal(err)
	}
	f := func(r int) int { return 2 * r }
	var res *core.Alg1Result
	for i := 0; i < b.N; i++ {
		res, err = core.Alg2(g, f, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRatio(b, len(res.S), len(opt))
}

// BenchmarkLemma32LocalOneCuts measures #(local 1-cuts) / MDS (Lemma 3.2
// bound: 6).
func BenchmarkLemma32LocalOneCuts(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 120, T: 5}, rng)
	opt, err := mds.ExactMDS(g)
	if err != nil {
		b.Fatal(err)
	}
	var locals []int
	for i := 0; i < b.N; i++ {
		locals = cuts.LocalOneCuts(g, 3)
	}
	reportRatio(b, len(locals), len(opt))
}

// BenchmarkLemma33Interesting measures #(interesting vertices) / MDS
// (Lemma 3.3 bound: 44) on the §4 clique-plus-pendants instance where
// unrestricted 2-cut vertices are Ω(n).
func BenchmarkLemma33Interesting(b *testing.B) {
	g := gen.CliquePendants(40)
	var interesting []int
	for i := 0; i < b.N; i++ {
		interesting = cuts.LocallyInterestingVertices(g, 3)
	}
	// MDS(clique+pendants) = 1.
	b.ReportMetric(float64(len(interesting)), "interesting")
	twoCutVerts := map[int]bool{}
	for _, c := range cuts.MinimalTwoCuts(g) {
		twoCutVerts[c.U] = true
		twoCutVerts[c.V] = true
	}
	b.ReportMetric(float64(len(twoCutVerts)), "twocut_vertices")
}

// BenchmarkLemma42Diameter measures the residual component diameter on
// growing strip chains (Lemma 4.2: bounded by m4.2(t)).
func BenchmarkLemma42Diameter(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := ding.MustGenerate(ding.Config{Kind: ding.StripChain, N: 300, T: 5}, rng)
	var res *core.Alg1Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.Alg1(g, core.PracticalParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.MaxComponentDiameter), "max_comp_diam")
}

// BenchmarkLemma518MinorBound measures the Figure 1/2 construction:
// |A| / ((t-1)|B|) <= 1 (Lemma 5.18).
func BenchmarkLemma518MinorBound(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 100, T: 5}, rng)
	var res *core.MinorBoundResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.BuildMinorBound(g)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.B) > 0 {
		b.ReportMetric(float64(len(res.A))/float64(4*len(res.B)), "A_over_t1B")
	}
}

// BenchmarkTheorem44MVC measures the MVC variant of Theorem 4.4
// (t-approx).
func BenchmarkTheorem44MVC(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 120, T: 5}, rng)
	opt, err := mds.ExactMVC(g)
	if err != nil {
		b.Fatal(err)
	}
	var res *core.MVCResult
	for i := 0; i < b.N; i++ {
		res = core.MVCD2(g)
	}
	reportRatio(b, len(res.S), len(opt))
}

// BenchmarkProposition31 measures the Lemma 5.2 / Proposition 3.1 cover
// machinery on trees.
func BenchmarkProposition31(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g := gen.RandomTree(120, rng)
	var cover *asdim.Cover
	var err error
	for i := 0; i < b.N; i++ {
		cover, err = asdim.BFSAnnulusCover(g, 5, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(asdim.ControlEstimate(g, cover, 5)), "control_f5")
}

// BenchmarkCycleLocalCuts measures the §4 cycle phenomenon: every vertex is
// a local 1-cut, none a global one.
func BenchmarkCycleLocalCuts(b *testing.B) {
	g := gen.Cycle(1000)
	var locals []int
	for i := 0; i < b.N; i++ {
		locals = cuts.LocalOneCuts(g, 3)
	}
	b.ReportMetric(float64(len(locals))/float64(g.N()), "local_cut_fraction")
	b.ReportMetric(float64(len(cuts.ArticulationPoints(g))), "global_cuts")
}

// BenchmarkSPQRDecomposition measures the triconnected decomposition plus
// reassembly check.
func BenchmarkSPQRDecomposition(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	g := gen.Cycle(60)
	for c := 0; c < 15; c++ {
		u, v := rng.Intn(60), rng.Intn(60)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	for i := 0; i < b.N; i++ {
		tree, err := spqr.Decompose(g)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tree.Reassemble(g.N()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorBallGather measures simulator throughput: a radius-4
// gather on a 20x20 grid, parallel engine.
func BenchmarkSimulatorBallGather(b *testing.B) {
	g := gen.Grid(20, 20)
	nw, err := local.NewNetwork(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := local.GatherViews(nw, 6, local.Parallel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorBallGatherLarge scales the gather benchmark to a
// 100x100 grid (10k vertices, ~20k edges) to expose the engine's
// per-vertex overhead at a size where goroutine-per-vertex scheduling used
// to dominate.
func BenchmarkSimulatorBallGatherLarge(b *testing.B) {
	g := gen.Grid(100, 100)
	nw, err := local.NewNetwork(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := local.GatherViews(nw, 6, local.Parallel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlg1Distributed runs the full message-passing Algorithm 1 on a
// moderate Ding instance, reporting the real round count.
func BenchmarkAlg1Distributed(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 40, T: 5}, rng)
	p := core.Params{R1: 3, R2: 3}
	var stats local.Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, stats, err = core.RunAlg1(g, nil, p, local.Parallel)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.Rounds), "rounds")
	b.ReportMetric(float64(stats.Messages), "messages")
}

// BenchmarkAlg1 measures the Algorithm 1 solver path end to end, pipeline
// vs the legacy sequential monolith, on the three shapes that stress
// different stages: a grid (cut enumeration dominates, one big residual
// component), a random K_{2,t}-minor-free instance (twin reduction + cuts),
// and a multi-component union of grids (ComponentSolve fans out across
// cores — the pipeline's headline case).
func BenchmarkAlg1(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	multi := gen.Grid(7, 7)
	for i := 0; i < 5; i++ {
		multi = graph.DisjointUnion(multi, gen.Grid(7, 7))
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", gen.Grid(12, 12)},
		{"minor-free", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 240, T: 5}, rng)},
		{"multi-component", multi},
	}
	for _, tc := range cases {
		b.Run(tc.name+"/pipeline", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Alg1(tc.g, core.PracticalParams()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/legacy", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Alg1Sequential(tc.g, core.PracticalParams()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactMDS measures the exact solver the whole evaluation leans
// on, through the full production dispatch (forest DP → treewidth-2 DP →
// bitset branch-and-bound engine). The ding instance exercises the DP
// path it has always taken; the grid-NxN family lands in the engine — the
// old adjacency-list search's worst case, which capped these sizes out of
// the evaluation entirely. The engine-vs-reference before/after family
// lives in internal/mds (the reference implementation is unexported).
func BenchmarkExactMDS(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"ding-100", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 100, T: 5}, rng)},
		{"grid-9x9", gen.Grid(9, 9)},
		{"grid-10x10", gen.Grid(10, 10)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var size int
			for i := 0; i < b.N; i++ {
				sol, err := mds.ExactMDS(tc.g)
				if err != nil {
					b.Fatal(err)
				}
				size = len(sol)
			}
			b.ReportMetric(float64(size), "opt")
		})
	}
}

// BenchmarkMinorDetection measures the exact K_{2,5} tester on a strip
// (a true negative: Ding proves strips are K_{2,5}-minor-free).
func BenchmarkMinorDetection(b *testing.B) {
	s, err := ding.NewStrip(6)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_, ok, err := minor.HasK2tMinor(s.G, 5)
		if err != nil {
			b.Fatal(err)
		}
		if ok {
			b.Fatal("strip unexpectedly contains K_{2,5}")
		}
	}
}

// BenchmarkTable1Full regenerates the whole Table 1 (the cmd/mdsbench
// default) once per iteration at reduced size.
func BenchmarkTable1Full(b *testing.B) {
	cfg := experiments.Table1Config{Seed: 1, N: 60, ProcessN: 20}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactMDSTreewidthDP measures the width-2 tree-decomposition DP
// at a scale far beyond branch and bound.
func BenchmarkExactMDSTreewidthDP(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	g := ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 2000, T: 5}, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mds.ExactMDS(g); err != nil {
			b.Fatal(err)
		}
	}
}
