// Vertexcover: the Minimum Vertex Cover variants from the end of §4. A
// link-monitoring application must place monitors on switches so that every
// cable has a monitored endpoint — a vertex cover. On outerplanar and
// K_{2,t}-minor-free topologies the paper's MVC variants give constant
// ratios in constant rounds.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"localmds/internal/core"
	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/mds"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "vertexcover: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(11))
	topologies := []struct {
		name string
		g    *graph.Graph
	}{
		{"outerplanar ring", gen.MaximalOuterplanar(60, rng)},
		{"K2,5-free mesh", ding.MustGenerate(ding.Config{Kind: ding.Mixed, N: 60, T: 5}, rng)},
		{"cactus backbone", gen.RandomCactus(60, rng)},
	}
	for _, topo := range topologies {
		fmt.Printf("== %s: %s\n", topo.name, topo.g)
		opt, err := mds.ExactMVC(topo.g)
		if err != nil {
			return err
		}

		d2 := core.MVCD2(topo.g)
		fmt.Printf("  Thm 4.4 MVC variant: %d monitors (ratio %.2f), valid = %v\n",
			len(d2.S), ratio(len(d2.S), len(opt)), mds.IsVertexCover(topo.g, d2.S))

		a1, err := core.MVCAlg1(topo.g, core.PracticalParams())
		if err != nil {
			return err
		}
		fmt.Printf("  Alg 1 MVC variant:   %d monitors (ratio %.2f), valid = %v\n",
			len(a1.S), ratio(len(a1.S), len(opt)), mds.IsVertexCover(topo.g, a1.S))

		matching := mds.MatchingVertexCover(topo.g)
		fmt.Printf("  matching baseline:   %d monitors (ratio %.2f)\n",
			len(matching), ratio(len(matching), len(opt)))
		fmt.Printf("  offline optimum:     %d monitors\n\n", len(opt))
	}
	return nil
}

func ratio(sol, opt int) float64 {
	if opt == 0 {
		return 0
	}
	return float64(sol) / float64(opt)
}
