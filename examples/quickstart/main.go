// Quickstart: generate a K_{2,5}-minor-free network, run the paper's two
// algorithms (Theorem 4.1's Algorithm 1 and Theorem 4.4's 3-round D2), and
// compare both against the exact optimum.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"localmds/internal/core"
	"localmds/internal/ding"
	"localmds/internal/local"
	"localmds/internal/mds"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(42))
	g, err := ding.Generate(ding.Config{Kind: ding.Mixed, N: 80, T: 5}, rng)
	if err != nil {
		return err
	}
	fmt.Printf("network: %s, diameter %d\n\n", g, g.Diameter())

	// Theorem 4.1: Algorithm 1 (centralized reference with practical
	// radii).
	res, err := core.Alg1(g, core.PracticalParams())
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 1 (Thm 4.1): |S| = %d, dominating = %v\n",
		len(res.S), mds.IsDominatingSet(g, res.S))
	fmt.Printf("  local 1-cut vertices |X| = %d, interesting |I| = %d, residual components = %d (max diameter %d)\n",
		len(res.X), len(res.I), len(res.Components), res.MaxComponentDiameter)

	// Theorem 4.4: the 3-round D2 algorithm, actually message-passed on
	// the LOCAL simulator.
	d2, stats, err := core.RunD2(g, nil, local.Parallel)
	if err != nil {
		return err
	}
	fmt.Printf("\nD2 (Thm 4.4, simulated): |S| = %d, dominating = %v, rounds = %d, messages = %d\n",
		len(d2), mds.IsDominatingSet(g, d2), stats.Rounds, stats.Messages)

	// Exact optimum for the ratio.
	opt, err := mds.ExactMDS(g)
	if err != nil {
		return err
	}
	fmt.Printf("\nexact MDS = %d\n", len(opt))
	fmt.Printf("Algorithm 1 ratio: %.2f (proven bound: 50)\n", float64(len(res.S))/float64(len(opt)))
	fmt.Printf("D2 ratio:          %.2f (proven bound: 2t-1 = 9)\n", float64(len(d2))/float64(len(opt)))
	return nil
}
