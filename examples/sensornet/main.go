// Sensornet: the wireless-sensor-network scenario from the paper's
// introduction. A field of battery-powered sensors must keep a small
// "awake" subset active such that every sleeping sensor has an awake
// neighbor to wake it up — exactly a dominating set. The network topology
// is a cactus-like deployment along roads and junctions
// (K_{2,3}-minor-free, hence in every class C_t), and the sensors elect the
// awake set with the 3-round Theorem 4.4 algorithm, fully distributed.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"localmds/internal/core"
	"localmds/internal/gen"
	"localmds/internal/local"
	"localmds/internal/mds"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "sensornet: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))
	field := gen.RandomCactus(150, rng)
	fmt.Printf("deployment: %d sensors, %d links, diameter %d\n",
		field.N(), field.M(), field.Diameter())

	// Random (but distinct) hardware identifiers, as the LOCAL model
	// assumes O(log n)-bit IDs — nothing about the algorithm depends on
	// them being 0..n-1.
	ids := rng.Perm(field.N() * 4)[:field.N()]

	awake, stats, err := core.RunD2(field, ids, local.Parallel)
	if err != nil {
		return err
	}
	fmt.Printf("awake set: %d sensors (%.1f%% duty cycle)\n",
		len(awake), 100*float64(len(awake))/float64(field.N()))
	fmt.Printf("wake-up coverage: %v\n", mds.IsDominatingSet(field, awake))
	fmt.Printf("election cost: %d synchronous rounds, %d messages\n",
		stats.Rounds, stats.Messages)

	// Compare with the energy-optimal (centralized, offline) schedule.
	opt, err := mds.ExactMDS(field)
	if err != nil {
		return err
	}
	fmt.Printf("offline optimum: %d sensors awake; distributed overhead: %.2fx\n",
		len(opt), float64(len(awake))/float64(len(opt)))

	// A longer-lived deployment can afford Algorithm 1's larger radius for
	// a better duty cycle.
	res, err := core.Alg1(field, core.PracticalParams())
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 1 alternative: %d sensors awake (%.2fx optimum), about %d rounds\n",
		len(res.S), float64(len(res.S))/float64(len(opt)), res.RoundsEstimate)
	return nil
}
