// Structure: a guided tour of the analysis machinery on one graph — the
// block-cut tree (Claim 5.3), minimal 2-cuts and interesting vertices
// (§3.2), the SPQR decomposition (Prop. 5.7), the non-crossing interesting
// families (Prop. 5.8), local cuts (Definition 2.1), and an asymptotic
// dimension cover with its empirical control function (§3).
package main

import (
	"fmt"
	"os"

	"localmds/internal/asdim"
	"localmds/internal/cuts"
	"localmds/internal/gen"
	"localmds/internal/spqr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "structure: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// A 12-cycle with two chords: 2-connected, with P/S structure.
	g := gen.Cycle(12)
	g.AddEdge(0, 6)
	g.AddEdge(3, 9)
	fmt.Printf("graph: %s\n\n", g)

	// Connectivity structure.
	fmt.Printf("articulation points: %v\n", cuts.ArticulationPoints(g))
	twoCuts := cuts.MinimalTwoCuts(g)
	fmt.Printf("minimal 2-cuts: %d\n", len(twoCuts))
	fmt.Printf("globally interesting vertices: %v\n\n", cuts.GloballyInterestingVertices(g))

	// Local cuts (Definition 2.1): every vertex of a long cycle is a local
	// 1-cut even though none is a global one.
	r := 2
	fmt.Printf("%d-local 1-cuts: %v\n", r, cuts.LocalOneCuts(g, r))
	fmt.Printf("%d-local 2-cuts: %d pairs\n\n", r, len(cuts.LocalTwoCuts(g, r)))

	// SPQR decomposition (Proposition 5.7).
	tree, err := spqr.Decompose(g)
	if err != nil {
		return err
	}
	s, p, rr := tree.CountTypes()
	fmt.Printf("SPQR tree: %d nodes (S=%d P=%d R=%d)\n", len(tree.Nodes), s, p, rr)
	for i, node := range tree.Nodes {
		fmt.Printf("  node %d (%s): vertices %v, %d virtual edges\n",
			i, node.Type, node.Vertices(), len(node.VirtualEdges()))
	}
	cand := tree.CandidateTwoCuts()
	fmt.Printf("Prop 5.7 candidate 2-cut positions: %d\n", len(cand))
	fmt.Printf("Graphviz rendering: %d bytes via tree.DOT (pipe to dot -Tpng)\n\n", len(tree.DOT("spqr")))

	// Non-crossing interesting families (Proposition 5.8).
	families := spqr.InterestingFamilies(g)
	fmt.Printf("Prop 5.8 interesting-cut families: %d (paper proves <= 3)\n", len(families))
	for i, fam := range families {
		fmt.Printf("  family %d: %v\n", i+1, fam)
	}
	fmt.Printf("cover all interesting vertices: %v; pairwise non-crossing: %v\n\n",
		spqr.FamiliesCoverInteresting(g, families), spqr.FamiliesNonCrossing(g, families))

	// Asymptotic dimension cover (§3).
	cover, err := asdim.BFSAnnulusCover(g, 3, 2)
	if err != nil {
		return err
	}
	fmt.Printf("BFS annulus cover (width 3, 2 classes): sizes %d and %d, valid = %v\n",
		len(cover.Classes[0]), len(cover.Classes[1]), cover.Verify(g) == nil)
	points, err := asdim.EstimateControlFunction(g, []int{1, 2, 3}, 2)
	if err != nil {
		return err
	}
	for _, pt := range points {
		fmt.Printf("  empirical control f(%d) = %d\n", pt.R, pt.Estimate)
	}
	return nil
}
