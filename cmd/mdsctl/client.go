package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// retryPolicy drives the client's capped exponential backoff. The jitter
// source is seeded deterministically (-retry-seed) so a scripted run —
// CI's crash-recovery smoke, a bisect session — retries at reproducible
// instants.
type retryPolicy struct {
	attempts int           // total tries, not retries; >= 1
	base     time.Duration // first backoff step
	cap      time.Duration // backoff ceiling, Retry-After included
	perTry   time.Duration // per-attempt timeout, 0 = none
	jitter   *rand.Rand
}

// backoff returns the delay before attempt i (0-based; backoff(0) is the
// delay after the first failure): base·2^i with up to 25% added jitter,
// capped.
func (p *retryPolicy) backoff(i int) time.Duration {
	d := p.base << uint(i)
	if d <= 0 || d > p.cap {
		d = p.cap
	}
	if p.jitter != nil {
		d += time.Duration(p.jitter.Int63n(int64(d)/4 + 1))
	}
	if d > p.cap {
		d = p.cap
	}
	return d
}

// client is the retrying HTTP client for one mdsctl invocation.
type client struct {
	base   string // http://host:port, no trailing slash
	token  string // bearer token, optional
	policy retryPolicy
	http   *http.Client
	logf   func(format string, args ...any) // retry narration to stderr, nil = quiet
}

// retryableStatus reports whether an HTTP status is worth retrying. 429
// and 503 are explicit backpressure — the daemon told us to come back
// (rate limit, full queue, or a restart in progress). 504 is a solve
// timeout: deterministic for a given instance, so retrying would just
// time out again. 5xx from intermediaries (502) is transient plumbing.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusBadGateway:
		return true
	}
	return false
}

// errGaveUp wraps the final failure after the retry budget is spent.
type errGaveUp struct {
	attempts int
	last     error
}

func (e *errGaveUp) Error() string {
	return fmt.Sprintf("giving up after %d attempts: %v", e.attempts, e.last)
}

func (e *errGaveUp) Unwrap() error { return e.last }

// do POSTs/GETs path with the retry policy: transport errors and
// retryable statuses are retried with capped exponential backoff, honoring
// a Retry-After header when the server sent one (the larger of the two
// delays wins). Re-submitting a solve is always safe: requests are
// content-addressed, so a retry that lands after a daemon restart is
// served from the durable store instead of recomputing.
//
// On success the full response body is returned along with the status.
// Non-retryable statuses (400, 401, 404, 504...) return immediately.
func (c *client) do(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	var lastErr error
	for attempt := 0; attempt < c.policy.attempts; attempt++ {
		if attempt > 0 {
			delay := c.policy.backoff(attempt - 1)
			if ra := retryAfterOf(lastErr); ra > delay {
				delay = ra
				if delay > c.policy.cap {
					delay = c.policy.cap
				}
			}
			if c.logf != nil {
				c.logf("attempt %d/%d failed (%v); retrying in %v", attempt, c.policy.attempts, lastErr, delay)
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return 0, nil, ctx.Err()
			}
		}
		status, data, err := c.once(ctx, method, path, body)
		if err == nil {
			return status, data, nil
		}
		lastErr = err
		var re *retryableError
		if !errors.As(err, &re) {
			return status, data, err
		}
	}
	return 0, nil, &errGaveUp{attempts: c.policy.attempts, last: lastErr}
}

// retryableError marks a failure do may retry; RetryAfter carries the
// server's Retry-After hint (0 = none).
type retryableError struct {
	err        error
	RetryAfter time.Duration
}

func (e *retryableError) Error() string { return e.err.Error() }

func (e *retryableError) Unwrap() error { return e.err }

// retryAfterOf extracts the Retry-After hint from a retryable error.
func retryAfterOf(err error) time.Duration {
	var re *retryableError
	if errors.As(err, &re) {
		return re.RetryAfter
	}
	return 0
}

// once performs a single attempt with the per-attempt timeout.
func (c *client) once(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	if c.policy.perTry > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.policy.perTry)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// Transport errors — connection refused while the daemon restarts,
		// reset mid-flight, per-attempt timeout — are the retryable case
		// the backoff exists for.
		return 0, nil, &retryableError{err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, &retryableError{err: fmt.Errorf("read response: %w", err)}
	}
	if retryableStatus(resp.StatusCode) {
		return resp.StatusCode, data, &retryableError{
			err:        fmt.Errorf("HTTP %d: %s", resp.StatusCode, firstLine(data)),
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	return resp.StatusCode, data, nil
}

// parseRetryAfter reads a delay-seconds Retry-After value (the only form
// mdsd emits); anything else is 0.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// firstLine trims a response body to its first line for error messages.
func firstLine(data []byte) string {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		data = data[:i]
	}
	if len(data) > 200 {
		data = data[:200]
	}
	return string(bytes.TrimSpace(data))
}
