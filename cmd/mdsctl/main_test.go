package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testClient builds a fast-retrying client against a test server.
func testClient(base string, attempts int) *client {
	return &client{
		base: base,
		policy: retryPolicy{
			attempts: attempts,
			base:     time.Millisecond,
			cap:      20 * time.Millisecond,
			perTry:   2 * time.Second,
			jitter:   rand.New(rand.NewSource(1)),
		},
		http: &http.Client{},
	}
}

// TestRetryOn503ThenSuccess: the client must ride out transient 503s
// (daemon restarting or shedding) and deliver the eventual success.
func TestRetryOn503ThenSuccess(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"done"}`)
	}))
	defer ts.Close()

	c := testClient(ts.URL, 8)
	status, data, err := c.do(context.Background(), http.MethodGet, "/healthz", nil)
	if err != nil || status != 200 || !strings.Contains(string(data), "done") {
		t.Fatalf("do: status=%d data=%s err=%v", status, data, err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("server saw %d calls, want 4 (3 failures + success)", got)
	}
}

// TestRetryHonorsRetryAfter: a parseable Retry-After larger than the
// backoff step must dominate the delay.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var firstRetryAt atomic.Int64
	start := time.Now()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		firstRetryAt.Store(int64(time.Since(start)))
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()

	c := testClient(ts.URL, 3)
	c.policy.cap = 5 * time.Second // let the 1s hint through
	if _, _, err := c.do(context.Background(), http.MethodGet, "/", nil); err != nil {
		t.Fatal(err)
	}
	if waited := time.Duration(firstRetryAt.Load()); waited < 900*time.Millisecond {
		t.Fatalf("retried after %v, want >= ~1s per Retry-After", waited)
	}
}

// TestNoRetryOnDeterministicStatus: 400/401/404/504 must fail immediately
// — retrying a deterministic failure just burns the budget.
func TestNoRetryOnDeterministicStatus(t *testing.T) {
	for _, status := range []int{400, 401, 404, 504} {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			http.Error(w, "no", status)
		}))
		c := testClient(ts.URL, 8)
		got, _, err := c.do(context.Background(), http.MethodGet, "/", nil)
		ts.Close()
		if err != nil {
			t.Fatalf("status %d: unexpected client error %v", status, err)
		}
		if got != status || calls.Load() != 1 {
			t.Fatalf("status %d: got %d after %d calls, want 1 call", status, got, calls.Load())
		}
	}
}

// TestRetryAcrossRestart: the target goes away entirely (connection
// refused) and comes back on the same address — the client's backoff
// rides out the gap, like a daemon restart under systemd.
func TestRetryAcrossRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // down: refuse connections

	restarted := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			close(restarted)
			return
		}
		srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, `{"status":"ok"}`)
		})}
		go srv.Serve(ln2)
		close(restarted)
	}()

	c := testClient("http://"+addr, 12)
	status, data, err := c.do(context.Background(), http.MethodGet, "/healthz", nil)
	<-restarted
	if err != nil || status != 200 {
		t.Fatalf("client did not survive the restart: status=%d data=%s err=%v", status, data, err)
	}
}

// TestGiveUpAfterBudget: a permanently dead endpoint exhausts the budget
// with a typed error naming the attempt count.
func TestGiveUpAfterBudget(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := testClient("http://"+addr, 3)
	_, _, err = c.do(context.Background(), http.MethodGet, "/", nil)
	if err == nil || !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("err = %v, want give-up naming 3 attempts", err)
	}
}

// TestBackoffDeterministicSeed: equal seeds produce equal delay schedules;
// the schedule grows and respects the cap.
func TestBackoffDeterministicSeed(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		p := retryPolicy{attempts: 8, base: 100 * time.Millisecond, cap: 2 * time.Second,
			jitter: rand.New(rand.NewSource(seed))}
		var ds []time.Duration
		for i := 0; i < 7; i++ {
			ds = append(ds, p.backoff(i))
		}
		return ds
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] > 2*time.Second {
			t.Fatalf("step %d exceeds the cap: %v", i, a[i])
		}
	}
	if c := mk(43); fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical jitter")
	}
}

// TestSolveVerbEndToEnd: the solve verb reads a file, posts it, and prints
// the response; flag validation rejects nonsense combinations.
func TestSolveVerbEndToEnd(t *testing.T) {
	var gotBody []byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/solve" {
			http.NotFound(w, r)
			return
		}
		gotBody, _ = func() ([]byte, error) { b := new(bytes.Buffer); _, e := b.ReadFrom(r.Body); return b.Bytes(), e }()
		fmt.Fprint(w, `{"status":"done","valid":true}`)
	}))
	defer ts.Close()

	in := filepath.Join(t.TempDir(), "c4.txt")
	if err := os.WriteFile(in, []byte("0 1\n1 2\n2 3\n3 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{"-addr", ts.URL, "-retries", "2",
		"solve", "-in", in, "-r1", "4", "-r2", "4"}, &out, &errb)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), `"status":"done"`) {
		t.Fatalf("stdout = %q", out.String())
	}
	var req map[string]any
	if err := json.Unmarshal(gotBody, &req); err != nil {
		t.Fatal(err)
	}
	if req["data"] == "" || req["params"] == nil {
		t.Fatalf("posted request missing data/params: %s", gotBody)
	}

	for _, bad := range [][]string{
		{"solve"}, // no input
		{"solve", "-in", in, "-generator", "grid"}, // both inputs
		{"solve", "-generator", "grid"},            // generator without -n
		{"-retries", "0", "health"},                // bad budget
		{"-retry-base", "-1s", "health"},           // bad backoff
		{"nonsense"},                               // unknown verb
		{"jobs"},                                   // missing ID
	} {
		if err := run(context.Background(), append([]string{"-addr", ts.URL}, bad...), &out, &errb); err == nil {
			t.Fatalf("run(%v): want error", bad)
		}
	}
}

// TestEventsVerbStreamsAndResumes: the events verb prints each SSE data
// line and exits cleanly on the server's end frame.
func TestEventsVerbStreamsAndResumes(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("after") != "0" {
			t.Errorf("after = %q, want 0", r.URL.Query().Get("after"))
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		for i := 1; i <= 3; i++ {
			fmt.Fprintf(w, "id: %d\nevent: done\ndata: {\"seq\":%d}\n\n", i, i)
			fl.Flush()
		}
		fmt.Fprint(w, "event: end\ndata: {\"reason\":\"draining\"}\n\n")
		fl.Flush()
	}))
	defer ts.Close()

	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-addr", ts.URL, "events"}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 || lines[0] != `{"seq":1}` || lines[3] != `{"reason":"draining"}` {
		t.Fatalf("streamed lines = %q", lines)
	}
}

// TestHealthVerb: plain pass-through of /healthz.
func TestHealthVerb(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok","store":"disabled"}`)
	}))
	defer ts.Close()
	var out, errb bytes.Buffer
	if err := run(context.Background(), []string{"-addr", ts.URL, "health"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"store":"disabled"`) {
		t.Fatalf("stdout = %q", out.String())
	}
}
