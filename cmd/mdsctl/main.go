// Command mdsctl is the remote client for a running mdsd daemon: it
// speaks the existing HTTP API with per-attempt timeouts, capped
// exponential backoff with deterministic seeded jitter, and Retry-After
// honored on 429/503 — so a solve submitted while the daemon restarts,
// sheds load, or rate-limits simply rides it out. Re-submitting is always
// safe: requests are content-addressed, so a retry that lands after a
// restart is served from the durable result store, never recomputed.
//
// Usage:
//
//	mdsctl [-addr http://localhost:8377] [-token T]
//	       [-retries N] [-retry-base D] [-retry-cap D] [-try-timeout D]
//	       [-retry-seed S] [-v] <verb> [verb flags]
//
// Verbs:
//
//	solve   -in FILE|- [-format auto|json|edgelist|dimacs]
//	        | -generator KIND -n N [-t T] [-p P] [-seed S]
//	        [-r1 R] [-r2 R] [-max-brute N]   — submit one solve, print the result
//	jobs    ID                                — poll one job's status
//	trace   ID [-chrome]                      — fetch a finished job's span tree
//	events  [-after SEQ]                      — stream /v1/events to stdout
//	health                                    — GET /healthz
//
// Exit status: 0 on success, 1 on any failure (bad flags, exhausted
// retries, non-2xx response).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "mdsctl: %v\n", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mdsctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://localhost:8377", "daemon base URL")
	token := fs.String("token", "", "bearer token for an authenticated daemon")
	retries := fs.Int("retries", 8, "total attempts before giving up (>= 1)")
	retryBase := fs.Duration("retry-base", 200*time.Millisecond, "first backoff step (doubles each retry)")
	retryCap := fs.Duration("retry-cap", 5*time.Second, "backoff ceiling, Retry-After included")
	tryTimeout := fs.Duration("try-timeout", 2*time.Minute, "per-attempt timeout (0: none)")
	retrySeed := fs.Int64("retry-seed", 0, "jitter seed; a fixed seed retries at reproducible instants")
	verbose := fs.Bool("v", false, "narrate retries to stderr")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mdsctl [flags] <solve|jobs|trace|events|health> [verb flags]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *retries < 1 {
		return fmt.Errorf("-retries must be >= 1, got %d", *retries)
	}
	if *retryBase <= 0 || *retryCap < *retryBase {
		return fmt.Errorf("-retry-base must be > 0 and -retry-cap >= -retry-base, got %v and %v", *retryBase, *retryCap)
	}
	if *tryTimeout < 0 {
		return fmt.Errorf("-try-timeout must be >= 0, got %v", *tryTimeout)
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return errors.New("missing verb")
	}

	c := &client{
		base:  strings.TrimRight(*addr, "/"),
		token: *token,
		policy: retryPolicy{
			attempts: *retries,
			base:     *retryBase,
			cap:      *retryCap,
			perTry:   *tryTimeout,
			jitter:   rand.New(rand.NewSource(*retrySeed)),
		},
		http: &http.Client{},
	}
	if *verbose {
		c.logf = func(format string, args ...any) { fmt.Fprintf(stderr, "mdsctl: "+format+"\n", args...) }
	}

	verb, verbArgs := rest[0], rest[1:]
	switch verb {
	case "solve":
		return cmdSolve(ctx, c, verbArgs, stdout, stderr)
	case "jobs":
		return cmdJobs(ctx, c, verbArgs, stdout)
	case "trace":
		return cmdTrace(ctx, c, verbArgs, stdout, stderr)
	case "events":
		return cmdEvents(ctx, c, verbArgs, stdout, stderr)
	case "health":
		return cmdHealth(ctx, c, stdout)
	default:
		fs.Usage()
		return fmt.Errorf("unknown verb %q", verb)
	}
}

// expectOK prints the body on 2xx and renders anything else as an error.
func expectOK(status int, data []byte, stdout io.Writer) error {
	if status >= 200 && status < 300 {
		if len(data) > 0 && data[len(data)-1] != '\n' {
			data = append(data, '\n')
		}
		_, err := stdout.Write(data)
		return err
	}
	return fmt.Errorf("HTTP %d: %s", status, firstLine(data))
}

// cmdSolve submits one solve request built from -in/-generator flags.
func cmdSolve(ctx context.Context, c *client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mdsctl solve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "graph file to submit (- for stdin)")
	format := fs.String("format", "auto", "encoding of -in: auto, json, edgelist, dimacs")
	genKind := fs.String("generator", "", "server-side generator kind (ding, grid, cactus, ...) instead of -in")
	n := fs.Int("n", 0, "generator vertex count")
	tParam := fs.Int("t", 0, "generator t parameter")
	p := fs.Float64("p", 0, "generator probability parameter")
	seed := fs.Int64("seed", 1, "generator seed")
	r1 := fs.Int("r1", 0, "params R1 (0: server default)")
	r2 := fs.Int("r2", 0, "params R2 (0: server default)")
	maxBrute := fs.Int("max-brute", 0, "params max brute-force component (0: server default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	req := map[string]any{}
	switch {
	case *genKind != "" && *in != "":
		return errors.New("solve: -in and -generator are mutually exclusive")
	case *genKind != "":
		if *n <= 0 {
			return errors.New("solve: -generator requires -n > 0")
		}
		req["generator"] = map[string]any{"kind": *genKind, "n": *n, "t": *tParam, "p": *p, "seed": *seed}
	case *in != "":
		var data []byte
		var err error
		if *in == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(*in)
		}
		if err != nil {
			return fmt.Errorf("solve: %w", err)
		}
		req["data"] = string(data)
		req["format"] = *format
	default:
		return errors.New("solve: need -in FILE or -generator KIND")
	}
	if *r1 != 0 || *r2 != 0 || *maxBrute != 0 {
		pr := map[string]any{}
		if *r1 != 0 {
			pr["r1"] = *r1
		}
		if *r2 != 0 {
			pr["r2"] = *r2
		}
		if *maxBrute != 0 {
			pr["max_brute_component"] = *maxBrute
		}
		req["params"] = pr
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	status, data, err := c.do(ctx, http.MethodPost, "/v1/solve", body)
	if err != nil {
		return fmt.Errorf("solve: %w", err)
	}
	return expectOK(status, data, stdout)
}

// cmdJobs fetches one job's status.
func cmdJobs(ctx context.Context, c *client, args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return errors.New("jobs: want exactly one job ID")
	}
	status, data, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+args[0], nil)
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return expectOK(status, data, stdout)
}

// cmdTrace fetches a finished job's span tree.
func cmdTrace(ctx context.Context, c *client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mdsctl trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	chrome := fs.Bool("chrome", false, "emit Chrome/Perfetto trace-event JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("trace: want exactly one job ID")
	}
	path := "/v1/jobs/" + fs.Arg(0) + "/trace"
	if *chrome {
		path += "?format=chrome"
	}
	status, data, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return expectOK(status, data, stdout)
}

// cmdHealth fetches /healthz.
func cmdHealth(ctx context.Context, c *client, stdout io.Writer) error {
	status, data, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return fmt.Errorf("health: %w", err)
	}
	return expectOK(status, data, stdout)
}

// cmdEvents streams /v1/events, one JSON event per line. On disconnect it
// reconnects with the retry policy, resuming after the last sequence seen
// so a daemon restart costs no events that survived the restart's ring.
func cmdEvents(ctx context.Context, c *client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mdsctl events", flag.ContinueOnError)
	fs.SetOutput(stderr)
	after := fs.Uint64("after", 0, "replay retained events with seq > this")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lastSeq := *after
	var lastErr error
	for attempt := 0; attempt < c.policy.attempts; attempt++ {
		if attempt > 0 {
			delay := c.policy.backoff(attempt - 1)
			if c.logf != nil {
				c.logf("events stream dropped (%v); reconnecting after seq %d in %v", lastErr, lastSeq, delay)
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil
			}
		}
		clean, seq, err := streamEvents(ctx, c, lastSeq, stdout)
		if seq > lastSeq {
			lastSeq = seq
			attempt = 0 // progress resets the retry budget
		}
		if clean || ctx.Err() != nil {
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("events: %w", &errGaveUp{attempts: c.policy.attempts, last: lastErr})
}

// streamEvents runs one SSE connection, printing each event's JSON line.
// clean reports an orderly end (daemon drained or the caller cancelled).
func streamEvents(ctx context.Context, c *client, after uint64, stdout io.Writer) (clean bool, lastSeq uint64, err error) {
	url := fmt.Sprintf("%s/v1/events?after=%d", c.base, after)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, after, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, after, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return false, after, fmt.Errorf("HTTP %d: %s", resp.StatusCode, firstLine(data))
	}
	lastSeq = after
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	ended := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			var seq uint64
			if _, err := fmt.Sscanf(line, "id: %d", &seq); err == nil && seq > lastSeq {
				lastSeq = seq
			}
		case line == "event: end":
			ended = true
		case strings.HasPrefix(line, "data: "):
			fmt.Fprintln(stdout, strings.TrimPrefix(line, "data: "))
			if ended {
				return true, lastSeq, nil
			}
		}
	}
	if ctx.Err() != nil {
		return true, lastSeq, nil
	}
	err = sc.Err()
	if err == nil {
		err = errors.New("stream closed")
	}
	return false, lastSeq, err
}
