package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"localmds/internal/gen"
	"localmds/internal/graphio"
)

// writeTemp writes content into a temp file and returns its path.
func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunFromEdgeListAndDIMACS: -in auto-detects all three encodings of
// the same C6 and produces identical reports.
func TestRunFromEdgeListAndDIMACS(t *testing.T) {
	inputs := map[string]string{
		"c6.json":   `{"n":6,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[0,5]]}`,
		"c6.txt":    "0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n",
		"c6.dimacs": "c cycle on six vertices\np edge 6 6\ne 1 2\ne 2 3\ne 3 4\ne 4 5\ne 5 6\ne 6 1\n",
	}
	var reports []string
	for name, content := range inputs {
		var out strings.Builder
		if err := run([]string{"-in", writeTemp(t, name, content), "-alg", "alg1"}, &out); err != nil {
			t.Fatalf("run(-in %s): %v", name, err)
		}
		if !strings.Contains(out.String(), "valid dominating set: true") {
			t.Fatalf("%s: %s", name, out.String())
		}
		reports = append(reports, out.String())
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] != reports[0] {
			t.Fatalf("reports differ across input formats:\n%s\nvs\n%s", reports[0], reports[i])
		}
	}
}

// TestRunExplicitFormat: -format pins the parser even when detection
// would pick another.
func TestRunExplicitFormat(t *testing.T) {
	path := writeTemp(t, "p4.edges", "0 1\n1 2\n2 3\n")
	var out strings.Builder
	if err := run([]string{"-in", path, "-format", "edgelist", "-alg", "greedy"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "valid dominating set: true") {
		t.Fatal(out.String())
	}
}

// TestRunMalformedInputLineColumn: malformed text input fails with a
// line/column message and no panic — the no-panics hardening contract.
func TestRunMalformedInputLineColumn(t *testing.T) {
	cases := map[string]string{
		"bad.txt":    "0 1\n1 x\n",
		"bad.dimacs": "p edge 3 1\ne 1 9\n",
		"bad.json":   `{"n":2,"edges":[[0,5]]}`,
	}
	for name, content := range cases {
		var out strings.Builder
		err := run([]string{"-in", writeTemp(t, name, content), "-alg", "greedy"}, &out)
		if err == nil {
			t.Fatalf("%s: want error", name)
		}
		if strings.HasSuffix(name, ".json") {
			continue // JSON errors carry no line/col, just a clean message
		}
		if !strings.Contains(err.Error(), "line 2") {
			t.Fatalf("%s: error %q lacks line position", name, err)
		}
	}
}

// TestRunHugeMatchesAlg1: the huge driver solves the same instance as the
// staged pipeline — from a csrbin file (mmap path), the equivalent edge
// list (parallel text path), and the generator — with the same solution
// size, and validates against the CSR.
func TestRunHugeMatchesAlg1(t *testing.T) {
	dir := t.TempDir()
	csrbinPath := filepath.Join(dir, "g.csrbin")
	edgesPath := filepath.Join(dir, "g.edges")
	g, err := gen.FromKind("grid", 100, 5, 0, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.WriteCSRBinFile(csrbinPath, g.Freeze()); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(edgesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var ref strings.Builder
	if err := run([]string{"-in", csrbinPath, "-alg", "alg1", "-r1", "1", "-r2", "2"}, &ref); err != nil {
		t.Fatalf("alg1 reference: %v", err)
	}
	refSize := sizeLine(t, ref.String())

	for _, args := range [][]string{
		{"-in", csrbinPath, "-alg", "alg1-huge", "-r1", "1", "-r2", "2"},            // auto-sniffed mmap
		{"-in", csrbinPath, "-alg", "alg1-huge", "-format", "csrbin", "-r1", "1", "-r2", "2"},
		{"-in", edgesPath, "-alg", "alg1-huge", "-workers", "3", "-r1", "1", "-r2", "2"}, // parallel text
		{"-graph", "grid", "-n", "100", "-seed", "11", "-alg", "alg1-huge", "-r1", "1", "-r2", "2", "-stages"},
	} {
		var out strings.Builder
		if err := run(args, &out); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		if !strings.Contains(out.String(), "valid dominating set: true") {
			t.Fatalf("run(%v): %s", args, out.String())
		}
		if got := sizeLine(t, out.String()); got != refSize {
			t.Fatalf("run(%v): %q != alg1 reference %q", args, got, refSize)
		}
	}
}

// sizeLine extracts the "solution size:" line from a report.
func sizeLine(t *testing.T, report string) string {
	t.Helper()
	for _, line := range strings.Split(report, "\n") {
		if strings.HasPrefix(line, "solution size:") {
			return line
		}
	}
	t.Fatalf("no solution size line in %q", report)
	return ""
}

// TestRunHugeRejectsOptAndDot: the huge path has no adjacency graph to
// probe or draw, so -opt and -dot are clean one-line errors.
func TestRunHugeRejectsOptAndDot(t *testing.T) {
	for _, extra := range [][]string{{"-opt"}, {"-dot", "out.dot"}} {
		args := append([]string{"-alg", "alg1-huge", "-graph", "cycle", "-n", "10"}, extra...)
		var out strings.Builder
		if err := run(args, &out); err == nil ||
			!strings.Contains(err.Error(), "alg1-huge does not support") {
			t.Fatalf("run(%v): want rejection, got %v", args, err)
		}
	}
}

// TestRunFromStdin: "-in -" reads the graph from stdin.
func TestRunFromStdin(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = old }()
	go func() {
		w.WriteString("0 1\n1 2\n2 0\n")
		w.Close()
	}()
	var out strings.Builder
	if err := run([]string{"-in", "-", "-alg", "greedy"}, &out); err != nil {
		t.Fatalf("run(-in -): %v", err)
	}
	if !strings.Contains(out.String(), "valid dominating set: true") {
		t.Fatal(out.String())
	}
}
