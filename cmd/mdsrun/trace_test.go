package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chromeDump is the shape -trace writes: the Chrome trace-event top-level
// object with complete ("X") events.
type chromeDump struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		TID  int     `json:"tid"`
	} `json:"traceEvents"`
	Metadata struct {
		TraceID string `json:"trace_id"`
	} `json:"metadata"`
}

func readTrace(t *testing.T, path string) chromeDump {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump chromeDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, data)
	}
	return dump
}

func assertStagedTrace(t *testing.T, dump chromeDump) {
	t.Helper()
	names := make(map[string]int)
	for _, ev := range dump.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want X (complete)", ev.Name, ev.Ph)
		}
		names[ev.Name]++
	}
	for _, stage := range []string{"solve", "TwinReduce", "Cuts", "Partition", "ComponentSolve", "Stitch"} {
		if names[stage] == 0 {
			t.Errorf("trace missing a %q event; got %v", stage, names)
		}
	}
}

func TestRunTraceAlg1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	if err := run([]string{"-graph", "cactus", "-n", "60", "-alg", "alg1", "-trace", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "wrote trace "+path) {
		t.Errorf("output missing trace confirmation:\n%s", out.String())
	}
	dump := readTrace(t, path)
	assertStagedTrace(t, dump)
	if dump.Metadata.TraceID != "mdsrun" {
		t.Errorf("trace_id = %q, want mdsrun", dump.Metadata.TraceID)
	}
}

func TestRunTraceAlg1Huge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	if err := run([]string{"-graph", "cactus", "-n", "60", "-alg", "alg1-huge", "-trace", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	assertStagedTrace(t, readTrace(t, path))
}

func TestRunTraceRejectsUntracedAlgs(t *testing.T) {
	for _, alg := range []string{"greedy", "d2", "tree", "exact", "alg1-local"} {
		var out strings.Builder
		err := run([]string{"-graph", "cycle", "-n", "12", "-alg", alg, "-trace", "/tmp/nope.json"}, &out)
		if err == nil || !strings.Contains(err.Error(), "-trace requires -alg alg1 or alg1-huge") {
			t.Errorf("-alg %s -trace: err = %v, want the staged-drivers error", alg, err)
		}
	}
}
