// Command mdsrun runs one of the paper's algorithms on a generated or
// JSON-loaded graph and prints the solution, its validity, the measured
// approximation ratio (when the instance is small enough for the exact
// solver), and — for the distributed algorithms — the LOCAL round count.
//
// Usage:
//
//	mdsrun -alg alg1|alg1-huge|alg1-local|d2|d2-local|tree|greedy|exact|mvc-alg1|mvc-d2 \
//	       [-graph ding|cactus|tree|cycle|grid|outerplanar|cliquependants|gnp] \
//	       [-in graph|-] [-format auto|json|edgelist|dimacs|csrbin] \
//	       [-n N] [-t T] [-seed S] [-p P] [-r1 R] [-r2 R] [-workers W] \
//	       [-opt] [-stages] [-trace out.json] [-dot out.dot]
//
// Without -opt, the exact optimum is a best-effort probe: instances under
// the solver cap get a node-budgeted exact solve, and the "optimum:" line
// is simply omitted when the probe gives up. With -opt, the optimum is
// mandatory: the solve runs unbudgeted and an instance beyond the solver
// cap is a clean one-line error (exit 1).
//
// -in loads the instance from a file ("-" for stdin) instead of
// generating it; the encoding — the repository JSON, a plain edge list,
// DIMACS, or the binary csrbin format — is auto-detected unless -format
// pins it. Malformed input exits 1 with a line/column (or byte-offset)
// message.
//
// -alg alg1-huge is the huge-graph ingestion path: csrbin files are
// mmap'd straight into the solver (near-zero load time), text inputs take
// the parallel chunked parser, and the partition-first driver
// (core.Alg1Huge) runs on the shared CSR with -workers component solvers —
// no adjacency-list intermediate is ever materialized. The report skips
// the diameter (an O(n·m) scan that would dwarf the solve) and the exact
// optimum probe; -opt and -dot are rejected.
//
// With -alg alg1 or alg1-huge, -stages additionally prints the per-stage
// wall-time/allocation/size table recorded in core.Alg1Result.StageStats,
// and -trace out.json dumps the solve's span tree (stages plus per-
// component solves) in Chrome trace-event format, loadable directly in
// chrome://tracing or Perfetto. Other algorithms have no staged driver to
// trace; -trace with them is a clean one-line error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"

	"localmds/internal/core"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/graphio"
	"localmds/internal/local"
	"localmds/internal/mds"
	"localmds/internal/obs"
	"localmds/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mdsrun: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdsrun", flag.ContinueOnError)
	alg := fs.String("alg", "alg1", "algorithm: alg1|alg1-huge|alg1-local|d2|d2-local|tree|greedy|exact|mvc-alg1|mvc-d2")
	kind := fs.String("graph", "ding", "generator: "+gen.Kinds)
	in := fs.String("in", "", "load the graph from this file (\"-\": stdin) instead of generating")
	format := fs.String("format", "auto", "input encoding for -in: auto|json|edgelist|dimacs|csrbin")
	n := fs.Int("n", 60, "target size for generated graphs")
	tParam := fs.Int("t", 5, "K_{2,t} parameter for the ding generator")
	seed := fs.Int64("seed", 1, "generator seed")
	p := fs.Float64("p", 0.05, "edge probability (gnp)")
	r1 := fs.Int("r1", 4, "Algorithm 1 local 1-cut radius")
	r2 := fs.Int("r2", 4, "Algorithm 1 local 2-cut radius")
	workers := fs.Int("workers", 0, "parse/solve worker count for -alg alg1-huge (0: GOMAXPROCS)")
	optFlag := fs.Bool("opt", false, "require the exact optimum and |S|/OPT ratio (error when the instance exceeds the solver cap)")
	stages := fs.Bool("stages", false, "print the Algorithm 1 pipeline per-stage timing/size table (requires -alg alg1 or alg1-huge)")
	traceOut := fs.String("trace", "", "write the solve span tree in Chrome trace-event format to this file (requires -alg alg1 or alg1-huge)")
	dotOut := fs.String("dot", "", "write the graph with the solution highlighted to this DOT file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h prints usage and exits 0, as before the FlagSet refactor
		}
		return err
	}
	if *in == "" {
		if *n < 1 {
			return fmt.Errorf("-n must be >= 1, got %d", *n)
		}
		if *kind == "ding" && *tParam < 3 {
			return fmt.Errorf("-t must be >= 3 for the ding generator, got %d", *tParam)
		}
		if *p < 0 || *p > 1 {
			return fmt.Errorf("-p must be a probability in [0, 1], got %g", *p)
		}
	}
	if *r1 < 0 || *r2 < 0 {
		return fmt.Errorf("-r1 and -r2 must be >= 0, got %d and %d", *r1, *r2)
	}
	if *stages && *alg != "alg1" && *alg != "alg1-huge" {
		return fmt.Errorf("-stages requires -alg alg1 or alg1-huge (the staged drivers), got -alg %s", *alg)
	}
	if *traceOut != "" && *alg != "alg1" && *alg != "alg1-huge" {
		return fmt.Errorf("-trace requires -alg alg1 or alg1-huge (the staged drivers record spans), got -alg %s", *alg)
	}
	if *alg == "alg1-huge" {
		if *optFlag || *dotOut != "" {
			return fmt.Errorf("-alg alg1-huge does not support -opt or -dot (the huge path never materializes an adjacency graph)")
		}
		return runHuge(stdout, *in, *format, *kind, *n, *tParam, *p, *seed,
			core.Params{R1: *r1, R2: *r2}, *workers, *stages, *traceOut)
	}

	g, err := loadGraph(*in, *format, *kind, *n, *tParam, *p, *seed)
	if err != nil {
		return err
	}
	if comps := g.NumComponents(); comps > 1 {
		// On a disconnected graph the plain "diameter" would silently be
		// the largest within-component eccentricity, which reads as a
		// tiny connected graph; say what is actually being reported.
		fmt.Fprintf(stdout, "graph: %s (%d components, diameter %d = max eccentricity over reachable pairs)\n",
			g, comps, g.Diameter())
	} else {
		fmt.Fprintf(stdout, "graph: %s (diameter %d)\n", g, g.Diameter())
	}

	tr, root := newCLITrace(*traceOut)
	sol, stats, stageStats, err := solve(g, *alg, core.Params{R1: *r1, R2: *r2}, core.SpanHooks(root))
	if err != nil {
		return err
	}
	if tr != nil {
		root.End()
		if err := writeChromeTrace(*traceOut, tr); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote trace %s\n", *traceOut)
	}
	isMVC := *alg == "mvc-alg1" || *alg == "mvc-d2"
	fmt.Fprintf(stdout, "algorithm: %s\nsolution size: %d\n", *alg, len(sol))
	if isMVC {
		fmt.Fprintf(stdout, "valid vertex cover: %v\n", mds.IsVertexCover(g, sol))
	} else {
		fmt.Fprintf(stdout, "valid dominating set: %v\n", mds.IsDominatingSet(g, sol))
	}
	if stats != nil {
		fmt.Fprintf(stdout, "LOCAL rounds: %d, messages: %d\n", stats.Rounds, stats.Messages)
	}
	if *optFlag {
		opt, err := optimum(g, isMVC, 0)
		if err != nil {
			return fmt.Errorf("-opt: %w", err)
		}
		if opt > 0 {
			fmt.Fprintf(stdout, "optimum: %d, ratio: %.3f\n", opt, float64(len(sol))/float64(opt))
		}
	} else if g.N() <= mds.MaxExactMDSVertices {
		// Best-effort probe: a node budget keeps adversarial instances
		// under the cap (large grids, sparse random graphs) from stalling
		// a run that never asked for OPT.
		opt, err := optimum(g, isMVC, autoOptNodeBudget)
		if err == nil && opt > 0 {
			fmt.Fprintf(stdout, "optimum: %d, ratio: %.3f\n", opt, float64(len(sol))/float64(opt))
		}
	}
	if *stages {
		fmt.Fprintf(stdout, "\npipeline stages:\n%s", stageStats.Render())
	}
	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(g.DOT("solution", sol)), 0o644); err != nil {
			return fmt.Errorf("write dot: %w", err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", *dotOut)
	}
	return nil
}

// autoOptNodeBudget bounds the automatic (non -opt) exact probe. The
// engine's per-node cost grows roughly quadratically with the instance
// (the packing bound scans the undominated set), measured at ~18µs/node
// at the 500-vertex scale — so 100k nodes caps the silent probe at ~2s
// on the largest cap-admitted instances and far less on typical ones,
// before the ratio line is dropped. -opt runs unbudgeted.
const autoOptNodeBudget = 100_000

// optimum computes the exact optimum for ratio reporting. maxNodes > 0
// bounds the MDS engine's search (the MVC solver has no budget knob; its
// lower cap keeps it snappy).
func optimum(g *graph.Graph, isMVC bool, maxNodes int64) (int, error) {
	if isMVC {
		sol, err := mds.ExactMVC(g)
		return len(sol), err
	}
	sol, err := mds.ExactMDSOpt(g, mds.ExactOptions{MaxNodes: maxNodes})
	return len(sol), err
}

// runHuge is the -alg alg1-huge path: load the instance straight into a
// frozen CSR (mmap for csrbin files, parallel chunked parse for text),
// run the partition-first driver on a bounded pool, and report against
// the CSR — the adjacency-list *graph.Graph is never built.
// newCLITrace creates the CLI solve trace, or (nil, nil) when -trace is
// off. The fixed trace ID keeps span IDs deterministic run to run, so two
// traces of the same instance diff cleanly.
func newCLITrace(traceOut string) (*obs.Trace, *obs.Span) {
	if traceOut == "" {
		return nil, nil
	}
	return obs.NewTrace("mdsrun", "solve", obs.TraceOptions{MaxSpans: 1 << 16})
}

// writeChromeTrace dumps the span tree in Chrome trace-event format.
func writeChromeTrace(path string, tr *obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	return nil
}

func runHuge(stdout io.Writer, in, format, kind string, n, tParam int, p float64, seed int64,
	params core.Params, workers int, stages bool, traceOut string) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool := runner.NewPool(workers, 4*workers)
	defer pool.Close()

	var csr *graph.CSR
	var mapped *graphio.MappedCSR
	switch {
	case in == "":
		g, err := gen.FromKind(kind, n, tParam, p, rand.New(rand.NewSource(seed)))
		if err != nil {
			return err
		}
		csr = g.Freeze()
	default:
		f, err := graphio.ParseFormat(format)
		if err != nil {
			return err
		}
		if in != "-" && (f == graphio.FormatCSRBin || (f == graphio.FormatAuto && sniffCSRBin(in))) {
			mapped, err = graphio.OpenCSRBin(in, graphio.OpenOptions{})
			if err != nil {
				return err
			}
			defer mapped.Close()
			csr = &mapped.CSR
		} else {
			csr, err = graphio.ParseCSRFile(in, f, graphio.CSROptions{Pool: pool})
			if err != nil {
				return err
			}
		}
	}

	fmt.Fprintf(stdout, "graph: n=%d m=%d (csr%s, diameter skipped on the huge path)\n",
		csr.N(), len(csr.Targets)/2, mappedTag(mapped))
	tr, root := newCLITrace(traceOut)
	res, err := core.Alg1Huge(csr, params, core.HugeOptions{Pool: pool, Hooks: core.SpanHooks(root)})
	if err != nil {
		return err
	}
	if tr != nil {
		root.End()
		if err := writeChromeTrace(traceOut, tr); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote trace %s\n", traceOut)
	}
	fmt.Fprintf(stdout, "algorithm: alg1-huge\nsolution size: %d\n", len(res.S))
	fmt.Fprintf(stdout, "valid dominating set: %v\n", mds.IsDominatingSetCSR(csr, res.S))
	if stages {
		fmt.Fprintf(stdout, "\npipeline stages:\n%s", res.StageStats.Render())
	}
	return nil
}

// sniffCSRBin reports whether the file starts with the csrbin magic.
func sniffCSRBin(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var b [1]byte
	if _, err := io.ReadFull(f, b[:]); err != nil {
		return false
	}
	fmtDetected, err := graphio.Detect(b[:])
	return err == nil && fmtDetected == graphio.FormatCSRBin
}

func mappedTag(m *graphio.MappedCSR) string {
	if m != nil && m.Mapped {
		return ", mmap"
	}
	return ""
}

// loadGraph reads the instance from a file or stdin (JSON, edge list, or
// DIMACS via internal/graphio) or generates it via the shared gen.FromKind
// dispatch (which converts generator panics into errors).
func loadGraph(in, format, kind string, n, tParam int, p float64, seed int64) (*graph.Graph, error) {
	if in == "" {
		return gen.FromKind(kind, n, tParam, p, rand.New(rand.NewSource(seed)))
	}
	f, err := graphio.ParseFormat(format)
	if err != nil {
		return nil, err
	}
	return graphio.ReadFile(in, f)
}

func solve(g *graph.Graph, alg string, p core.Params, hooks core.TraceHooks) ([]int, *local.Stats, core.StageStats, error) {
	switch alg {
	case "alg1":
		res, err := core.Alg1Pipeline(g, p, core.PipelineOptions{Hooks: hooks})
		if err != nil {
			return nil, nil, nil, err
		}
		return res.S, nil, res.StageStats, nil
	case "alg1-local":
		sol, stats, err := core.RunAlg1(g, nil, p, local.Parallel)
		return sol, &stats, nil, err
	case "d2":
		return core.D2(g).S, nil, nil, nil
	case "d2-local":
		sol, stats, err := core.RunD2(g, nil, local.Parallel)
		return sol, &stats, nil, err
	case "tree":
		return core.TreeMDS(g), nil, nil, nil
	case "greedy":
		return mds.GreedyMDS(g), nil, nil, nil
	case "exact":
		sol, err := mds.ExactMDS(g)
		return sol, nil, nil, err
	case "mvc-alg1":
		res, err := core.MVCAlg1(g, p)
		if err != nil {
			return nil, nil, nil, err
		}
		return res.S, nil, nil, nil
	case "mvc-d2":
		return core.MVCD2(g).S, nil, nil, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown algorithm %q", alg)
	}
}
