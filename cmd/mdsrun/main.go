// Command mdsrun runs one of the paper's algorithms on a generated or
// JSON-loaded graph and prints the solution, its validity, the measured
// approximation ratio (when the instance is small enough for the exact
// solver), and — for the distributed algorithms — the LOCAL round count.
//
// Usage:
//
//	mdsrun -alg alg1|alg1-local|d2|d2-local|tree|greedy|exact|mvc-alg1|mvc-d2 \
//	       [-graph ding|cactus|tree|cycle|grid|outerplanar|cliquependants] \
//	       [-in graph.json] [-n N] [-t T] [-seed S] [-r1 R] [-r2 R] [-dot out.dot]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"localmds/internal/core"
	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/local"
	"localmds/internal/mds"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mdsrun: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	alg := flag.String("alg", "alg1", "algorithm: alg1|alg1-local|d2|d2-local|tree|greedy|exact|mvc-alg1|mvc-d2")
	kind := flag.String("graph", "ding", "generator: ding|cactus|tree|cycle|grid|outerplanar|cliquependants")
	in := flag.String("in", "", "load graph from JSON instead of generating")
	n := flag.Int("n", 60, "target size for generated graphs")
	tParam := flag.Int("t", 5, "K_{2,t} parameter for the ding generator")
	seed := flag.Int64("seed", 1, "generator seed")
	r1 := flag.Int("r1", 4, "Algorithm 1 local 1-cut radius")
	r2 := flag.Int("r2", 4, "Algorithm 1 local 2-cut radius")
	dotOut := flag.String("dot", "", "write the graph with the solution highlighted to this DOT file")
	flag.Parse()

	g, err := loadGraph(*in, *kind, *n, *tParam, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s (diameter %d)\n", g, g.Diameter())

	sol, stats, err := solve(g, *alg, core.Params{R1: *r1, R2: *r2})
	if err != nil {
		return err
	}
	isMVC := *alg == "mvc-alg1" || *alg == "mvc-d2"
	fmt.Printf("algorithm: %s\nsolution size: %d\n", *alg, len(sol))
	if isMVC {
		fmt.Printf("valid vertex cover: %v\n", mds.IsVertexCover(g, sol))
	} else {
		fmt.Printf("valid dominating set: %v\n", mds.IsDominatingSet(g, sol))
	}
	if stats != nil {
		fmt.Printf("LOCAL rounds: %d, messages: %d\n", stats.Rounds, stats.Messages)
	}
	if g.N() <= mds.MaxExactMDSVertices {
		opt, err := optimum(g, isMVC)
		if err == nil && opt > 0 {
			fmt.Printf("optimum: %d, ratio: %.3f\n", opt, float64(len(sol))/float64(opt))
		}
	}
	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(g.DOT("solution", sol)), 0o644); err != nil {
			return fmt.Errorf("write dot: %w", err)
		}
		fmt.Printf("wrote %s\n", *dotOut)
	}
	return nil
}

// optimum computes the exact optimum for ratio reporting.
func optimum(g *graph.Graph, isMVC bool) (int, error) {
	if isMVC {
		sol, err := mds.ExactMVC(g)
		return len(sol), err
	}
	sol, err := mds.ExactMDS(g)
	return len(sol), err
}

func loadGraph(in, kind string, n, tParam int, seed int64) (*graph.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadJSON(f)
	}
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case "ding":
		return ding.Generate(ding.Config{Kind: ding.Mixed, N: n, T: tParam}, rng)
	case "cactus":
		return gen.RandomCactus(n, rng), nil
	case "tree":
		return gen.RandomTree(n, rng), nil
	case "cycle":
		return gen.Cycle(n), nil
	case "grid":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		return gen.Grid(side, side), nil
	case "outerplanar":
		return gen.MaximalOuterplanar(n, rng), nil
	case "cliquependants":
		return gen.CliquePendants(n / 2), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", kind)
	}
}

func solve(g *graph.Graph, alg string, p core.Params) ([]int, *local.Stats, error) {
	switch alg {
	case "alg1":
		res, err := core.Alg1(g, p)
		if err != nil {
			return nil, nil, err
		}
		return res.S, nil, nil
	case "alg1-local":
		sol, stats, err := core.RunAlg1(g, nil, p, local.Parallel)
		return sol, &stats, err
	case "d2":
		return core.D2(g).S, nil, nil
	case "d2-local":
		sol, stats, err := core.RunD2(g, nil, local.Parallel)
		return sol, &stats, err
	case "tree":
		return core.TreeMDS(g), nil, nil
	case "greedy":
		return mds.GreedyMDS(g), nil, nil
	case "exact":
		sol, err := mds.ExactMDS(g)
		return sol, nil, err
	case "mvc-alg1":
		res, err := core.MVCAlg1(g, p)
		if err != nil {
			return nil, nil, err
		}
		return res.S, nil, nil
	case "mvc-d2":
		return core.MVCD2(g).S, nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown algorithm %q", alg)
	}
}
