package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"localmds/internal/graph"
)

func TestRunCycleAlg1(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-graph", "cycle", "-n", "30", "-alg", "alg1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"graph: Graph(n=30, m=30) (diameter 15)",
		"valid dominating set: true",
		"optimum: 10",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunDistributedReportsRounds(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-graph", "cycle", "-n", "24", "-alg", "d2-local"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "LOCAL rounds: ") {
		t.Errorf("distributed run did not report rounds:\n%s", out.String())
	}
}

func TestRunMVC(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-graph", "cycle", "-n", "18", "-alg", "mvc-d2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "valid vertex cover: true") {
		t.Errorf("MVC run invalid:\n%s", out.String())
	}
}

// TestRunStagesTable checks that -stages prints the pipeline's per-stage
// table with every stage named, and that it is rejected for algorithms
// that do not run the staged pipeline.
func TestRunStagesTable(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-graph", "ding", "-n", "60", "-alg", "alg1", "-stages"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"pipeline stages:",
		"TwinReduce", "Cuts", "Partition", "ComponentSolve", "Stitch", "total",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("-stages output missing %q:\n%s", want, got)
		}
	}

	var plain strings.Builder
	if err := run([]string{"-graph", "ding", "-n", "60", "-alg", "alg1"}, &plain); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(plain.String(), "pipeline stages:") {
		t.Error("stage table printed without -stages")
	}
}

// TestRunFromJSONDisconnected drives the generate → encode → solve
// round-trip and checks the disconnected-graph report: a 3-component
// graph must say so instead of printing a misleading bare "(diameter 1)".
func TestRunFromJSONDisconnected(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(4, 5)
	path := filepath.Join(t.TempDir(), "g.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out strings.Builder
	if err := run([]string{"-in", path, "-alg", "greedy"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "3 components") {
		t.Errorf("disconnected graph not reported as such:\n%s", got)
	}
	if !strings.Contains(got, "diameter 1 = max eccentricity over reachable pairs") {
		t.Errorf("disconnected diameter not labeled:\n%s", got)
	}
	if !strings.Contains(got, "valid dominating set: true") {
		t.Errorf("greedy solution invalid on disconnected graph:\n%s", got)
	}
}

func TestRunConnectedKeepsPlainDiameterLine(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-graph", "grid", "-n", "16", "-alg", "greedy"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "(diameter 6)\n") {
		t.Errorf("connected graph line changed:\n%s", out.String())
	}
}

func TestRunWritesDOT(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.dot")
	var out strings.Builder
	if err := run([]string{"-graph", "cycle", "-n", "12", "-dot", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("dot file: %v", err)
	}
	if !strings.HasPrefix(string(data), "graph ") {
		t.Errorf("dot file malformed: %q", string(data)[:20])
	}
}

func TestInvalidInputsErrorCleanly(t *testing.T) {
	cases := [][]string{
		{"-graph", "cycle", "-n", "0"},                               // zero size
		{"-graph", "cycle", "-n", "-3"},                              // negative size
		{"-graph", "cycle", "-n", "2"},                               // below the generator's minimum (panics in gen)
		{"-graph", "ding", "-t", "1"},                                // invalid K_{2,t} parameter
		{"-graph", "nosuch"},                                         // unknown generator
		{"-alg", "nosuch", "-graph", "cycle", "-n", "12"},            // unknown algorithm
		{"-r1", "-1", "-graph", "cycle", "-n", "12"},                 // negative radius
		{"-in", "/nonexistent/graph.json"},                           // missing input file
		{"-stages", "-alg", "greedy", "-graph", "cycle", "-n", "12"}, // -stages without the pipeline
		{"-stages", "-alg", "d2-local", "-graph", "cycle", "-n", "12"},
	}
	for _, args := range cases {
		var out strings.Builder
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("run(%v) panicked: %v", args, r)
				}
			}()
			return run(args, &out)
		}()
		if err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestRunOptFlag checks that -opt forces the exact optimum: a 9x9 grid
// (beyond the old solver's practical reach) reports OPT 20, an instance
// over the solver cap is a clean error naming the cap, and the ratio line
// appears for approximation algorithms.
func TestRunOptFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-graph", "grid", "-n", "81", "-alg", "greedy", "-opt"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "optimum: 20, ratio: ") {
		t.Errorf("-opt output missing exact optimum:\n%s", got)
	}
}

func TestRunOptFlagOverCapFailsCleanly(t *testing.T) {
	var out strings.Builder
	// -n 900 builds a 30x30 grid: over MaxExactMDSVertices, high treewidth.
	err := run([]string{"-graph", "grid", "-n", "900", "-alg", "greedy", "-opt"}, &out)
	if err == nil {
		t.Fatal("-opt on an over-cap instance should fail")
	}
	if !strings.Contains(err.Error(), "capped") {
		t.Errorf("error should name the solver cap, got: %v", err)
	}
	if strings.Contains(out.String(), "optimum:") {
		t.Errorf("no optimum line expected on failure:\n%s", out.String())
	}
}
