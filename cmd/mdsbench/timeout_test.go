package main

import (
	"strings"
	"testing"
)

// TestTaskTimeoutTripsAndNames: an absurdly small -timeout fails the
// sweep with an error that says "timed out" and names the offending cell
// instead of hanging.
func TestTaskTimeoutTripsAndNames(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-n", "40", "-process-n", "16", "-only", "table1", "-timeout", "1ns"}, &out)
	if err == nil {
		t.Fatal("run with -timeout 1ns succeeded, want a timeout error")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("error %q does not mention the timeout", err)
	}
	if !strings.Contains(err.Error(), "table1") {
		t.Fatalf("error %q does not name the experiment", err)
	}
}

// TestGenerousTimeoutHarmless: a generous -timeout leaves the output
// byte-identical to an unbounded run.
func TestGenerousTimeoutHarmless(t *testing.T) {
	plain := bench(t, "-only", "spqr")
	bounded := bench(t, "-only", "spqr", "-timeout", "10m")
	if plain != bounded {
		t.Fatalf("-timeout changed the output:\n%s\nvs\n%s", plain, bounded)
	}
}

func TestNegativeTimeoutRejected(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-timeout", "-5s"}, &out); err == nil {
		t.Fatal("negative -timeout accepted")
	}
}
