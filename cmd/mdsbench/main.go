// Command mdsbench regenerates the paper's evaluation: Table 1, the vertex
// cover variants, and the per-lemma measurements (Lemmas 3.2, 3.3, 4.2,
// 5.17/5.18, Propositions 3.1/5.7/5.8, and the §4 cycle discussion).
//
// Usage:
//
//	mdsbench [-seed N] [-n N] [-process-n N] [-only table1|mvc|lemmas|spqr|prop31|cycle]
package main

import (
	"flag"
	"fmt"
	"os"

	"localmds/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mdsbench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "generator seed")
	n := flag.Int("n", 120, "instance size for ratio measurements")
	processN := flag.Int("process-n", 48, "instance size for simulator round measurements")
	only := flag.String("only", "", "run a single experiment group (table1|mvc|lemmas|spqr|prop31|cycle|ablation)")
	flag.Parse()

	cfg := experiments.Table1Config{Seed: *seed, N: *n, ProcessN: *processN}
	want := func(group string) bool { return *only == "" || *only == group }

	if want("table1") {
		tab, err := experiments.Table1(cfg)
		if err != nil {
			return fmt.Errorf("table1: %w", err)
		}
		fmt.Println(tab.Render())
	}
	if want("mvc") {
		tab, err := experiments.MVCTable(cfg)
		if err != nil {
			return fmt.Errorf("mvc: %w", err)
		}
		fmt.Println(tab.Render())
	}
	if want("lemmas") {
		l32, err := experiments.Lemma32(*seed, []int{*n / 2, *n}, 3)
		if err != nil {
			return fmt.Errorf("lemma 3.2: %w", err)
		}
		fmt.Println(l32.Render())
		l33, err := experiments.Lemma33(*seed, []int{*n / 2, *n / 1}, 3)
		if err != nil {
			return fmt.Errorf("lemma 3.3: %w", err)
		}
		fmt.Println(l33.Render())
		l42, err := experiments.Lemma42(*seed, []int{*n, 2 * *n, 4 * *n})
		if err != nil {
			return fmt.Errorf("lemma 4.2: %w", err)
		}
		fmt.Println(l42.Render())
		l518, err := experiments.Lemma518(*seed, []int{*n / 2, *n}, 5)
		if err != nil {
			return fmt.Errorf("lemma 5.18: %w", err)
		}
		fmt.Println(l518.Render())
	}
	if want("cycle") {
		fmt.Println(experiments.CycleLocalCuts([]int{30, 100, 300, 1000}, 3).Render())
	}
	if want("spqr") {
		tab, err := experiments.SPQRStats(*seed, []int{16, 24, 32})
		if err != nil {
			return fmt.Errorf("spqr: %w", err)
		}
		fmt.Println(tab.Render())
	}
	if want("prop31") {
		tab, err := experiments.Proposition31(cfg)
		if err != nil {
			return fmt.Errorf("prop31: %w", err)
		}
		fmt.Println(tab.Render())
	}
	if want("ablation") {
		rad, err := experiments.RadiusAblation(*seed, *n, []int{2, 3, 4, 5, 6})
		if err != nil {
			return fmt.Errorf("radius ablation: %w", err)
		}
		fmt.Println(rad.Render())
		rvt, err := experiments.RoundsVsT(*seed, *processN, []int{3, 4, 5, 6})
		if err != nil {
			return fmt.Errorf("rounds vs t: %w", err)
		}
		fmt.Println(rvt.Render())
		sc, err := experiments.Scaling(*seed, []int{*n, 2 * *n, 4 * *n, 8 * *n})
		if err != nil {
			return fmt.Errorf("scaling: %w", err)
		}
		fmt.Println(sc.Render())
		mf, err := experiments.MessageFootprint(*seed, *processN)
		if err != nil {
			return fmt.Errorf("message footprint: %w", err)
		}
		fmt.Println(mf.Render())
		dt, err := experiments.DensityTable(*seed, *n)
		if err != nil {
			return fmt.Errorf("density table: %w", err)
		}
		fmt.Println(dt.Render())
		bl, err := experiments.Baselines(*seed, []int{*n, 2 * *n, 4 * *n})
		if err != nil {
			return fmt.Errorf("baselines: %w", err)
		}
		fmt.Println(bl.Render())
	}
	return nil
}
