// Command mdsbench regenerates the paper's evaluation: Table 1, the vertex
// cover variants, and the per-lemma measurements (Lemmas 3.2, 3.3, 4.2,
// 5.17/5.18, Propositions 3.1/5.7/5.8, and the §4 cycle discussion).
//
// Usage:
//
//	mdsbench [-seed N] [-rootseed N] [-n N] [-process-n N] [-parallel W]
//	         [-replicates R] [-timeout D]
//	         [-only table1|mvc|lemmas|spqr|prop31|cycle|ablation|stages]
//	         [-json]
//
// -timeout bounds each task (e.g. -timeout 30s): a pathological row fails
// the sweep with a "timed out" error naming the cell instead of stalling
// it forever.
//
// The "stages" group profiles the Algorithm 1 pipeline per stage. Its wall
// times are measurements, not derived values, so it is excluded from the
// default sweep (which is byte-identical for a fixed root seed regardless
// of -parallel) and runs only with -only stages.
//
// Experiments are decomposed into independent tasks (internal/experiments
// declares them; internal/runner executes them on a bounded worker pool).
// Every (experiment, row, replicate) cell derives its own seed from the
// root seed, so the tables are byte-identical for a fixed root seed
// regardless of -parallel, and -replicates R aggregates R independently
// seeded runs per row as "mean ±stddev [min..max]".
//
// With -json, results are emitted as machine-readable JSON (per group:
// name, wall-clock ns, allocation count; per table row: the raw cells plus
// parsed ratio/rounds where the table reports them) for BENCH_*.json
// tracking across PRs.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"localmds/internal/experiments"
	"localmds/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mdsbench: %v\n", err)
		os.Exit(1)
	}
}

// group is one experiment family: a name and the specs it renders.
type group struct {
	name  string
	specs []experiments.Spec
}

// rowJSON is one table row with metrics parsed out where available.
type rowJSON struct {
	Name   string   `json:"name"`
	Cells  []string `json:"cells"`
	Ratio  *float64 `json:"ratio,omitempty"`
	Rounds *float64 `json:"rounds,omitempty"`
}

// tableJSON is a rendered table in structured form.
type tableJSON struct {
	Title  string    `json:"title"`
	Header []string  `json:"header"`
	Rows   []rowJSON `json:"rows"`
}

// groupJSON is the machine-readable result of one experiment group.
type groupJSON struct {
	Name     string      `json:"name"`
	NsOp     int64       `json:"ns_op"`
	AllocsOp uint64      `json:"allocs_op"`
	Tables   []tableJSON `json:"tables"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdsbench", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "generator root seed")
	rootSeed := fs.Int64("rootseed", 0, "root of the per-task seed derivation tree (0: use -seed)")
	n := fs.Int("n", 120, "instance size for ratio measurements")
	processN := fs.Int("process-n", 48, "instance size for simulator round measurements")
	parallel := fs.Int("parallel", 0, "experiment worker pool size (0: all cores)")
	replicates := fs.Int("replicates", 1, "independently seeded runs per task, aggregated as mean ±stddev [min..max]")
	timeout := fs.Duration("timeout", 0, "per-task timeout, e.g. 30s (0: unbounded)")
	only := fs.String("only", "", "run a single experiment group (table1|mvc|lemmas|spqr|prop31|cycle|ablation|stages)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON results")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h prints usage and exits 0, as before the FlagSet refactor
		}
		return err
	}
	if *n < 8 {
		return fmt.Errorf("-n must be >= 8 (the lemma sweeps generate instances down to n/4), got %d", *n)
	}
	if *processN < 3 {
		return fmt.Errorf("-process-n must be >= 3, got %d", *processN)
	}
	if *parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0, got %d", *parallel)
	}
	if *replicates < 1 {
		return fmt.Errorf("-replicates must be >= 1, got %d", *replicates)
	}
	if *timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0, got %v", *timeout)
	}
	root := *seed
	if *rootSeed != 0 {
		root = *rootSeed
	}

	cfg := experiments.Table1Config{Seed: root, N: *n, ProcessN: *processN}
	groups := []group{
		{"table1", []experiments.Spec{experiments.Table1Spec(cfg)}},
		{"mvc", []experiments.Spec{experiments.MVCTableSpec(cfg)}},
		{"lemmas", []experiments.Spec{
			experiments.Lemma32Spec([]int{*n / 2, *n}, 3),
			experiments.Lemma33Spec([]int{*n / 2, *n}, 3),
			experiments.Lemma42Spec([]int{*n, 2 * *n, 4 * *n}),
			experiments.Lemma518Spec([]int{*n / 2, *n}, 5),
		}},
		{"cycle", []experiments.Spec{experiments.CycleLocalCutsSpec([]int{30, 100, 300, 1000}, 3)}},
		{"spqr", []experiments.Spec{experiments.SPQRStatsSpec([]int{16, 24, 32})}},
		{"prop31", []experiments.Spec{experiments.Proposition31Spec(cfg)}},
		{"ablation", []experiments.Spec{
			experiments.RadiusAblationSpec(*n, []int{2, 3, 4, 5, 6}),
			experiments.RoundsVsTSpec(*processN, []int{3, 4, 5, 6}),
			experiments.ScalingSpec([]int{*n, 2 * *n, 4 * *n, 8 * *n}),
			experiments.MessageFootprintSpec(*processN),
			experiments.DensityTableSpec(*n),
			experiments.BaselinesSpec([]int{*n, 2 * *n, 4 * *n}),
		}},
		// Measurement-only group: excluded from the default sweep so the
		// default output stays byte-identical at any -parallel.
		{"stages", []experiments.Spec{experiments.StageProfileSpec(*n)}},
	}
	if *only != "" {
		found := false
		for _, grp := range groups {
			if grp.name == *only {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("unknown experiment group %q", *only)
		}
	}

	// One runner (and one result cache) across every group, so a repeated
	// sweep within the process skips identical tasks.
	r := runner.New(runner.Options{Workers: *parallel, Replicates: *replicates, RootSeed: root, TaskTimeout: *timeout})

	selected := groups[:0]
	for _, grp := range groups {
		if *only == grp.name || (*only == "" && grp.name != "stages") {
			selected = append(selected, grp)
		}
	}

	if !*jsonOut {
		// Text mode needs no per-group timing, so every group's specs go
		// into one pool submission: no barrier between groups, and the
		// wall-clock floor is the single longest task, not the sum of
		// per-group stragglers.
		var specs []experiments.Spec
		for _, grp := range selected {
			specs = append(specs, grp.specs...)
		}
		tables, err := r.Run(specs)
		if err != nil {
			return err
		}
		for _, t := range tables {
			fmt.Fprintln(stdout, t.Render())
		}
		return nil
	}

	results := []groupJSON{}
	for _, grp := range selected {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		tables, err := r.Run(grp.specs)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return fmt.Errorf("%s: %w", grp.name, err)
		}
		gj := groupJSON{
			Name:     grp.name,
			NsOp:     elapsed.Nanoseconds(),
			AllocsOp: after.Mallocs - before.Mallocs,
		}
		for _, t := range tables {
			gj.Tables = append(gj.Tables, structureTable(t))
		}
		results = append(results, gj)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"results": results})
}

// structureTable converts a rendered table into its JSON form, parsing
// ratio and round metrics out of the columns that carry them.
func structureTable(t *experiments.Table) tableJSON {
	tj := tableJSON{Title: t.Title, Header: t.Header}
	ratioCol, roundsCol := -1, -1
	for i, h := range t.Header {
		lh := strings.ToLower(h)
		switch {
		case strings.Contains(lh, "measured ratio") || lh == "ratio":
			ratioCol = i
		case strings.Contains(lh, "measured rounds") || lh == "rounds":
			roundsCol = i
		}
	}
	for _, row := range t.Rows {
		rj := rowJSON{Cells: row}
		if len(row) > 0 {
			rj.Name = row[0]
		}
		if ratioCol >= 0 && ratioCol < len(row) {
			rj.Ratio = parseLeadingFloat(row[ratioCol])
		}
		if roundsCol >= 0 && roundsCol < len(row) {
			rj.Rounds = parseLeadingFloat(row[roundsCol])
		}
		tj.Rows = append(tj.Rows, rj)
	}
	return tj
}

// parseLeadingFloat adapts experiments.LeadingFloat to the JSON schema's
// optional-number convention (nil when the cell has no number).
func parseLeadingFloat(cell string) *float64 {
	f, ok := experiments.LeadingFloat(cell)
	if !ok {
		return nil
	}
	return &f
}
