// Command mdsbench regenerates the paper's evaluation: Table 1, the vertex
// cover variants, and the per-lemma measurements (Lemmas 3.2, 3.3, 4.2,
// 5.17/5.18, Propositions 3.1/5.7/5.8, and the §4 cycle discussion).
//
// Usage:
//
//	mdsbench [-seed N] [-n N] [-process-n N] [-only table1|mvc|lemmas|spqr|prop31|cycle|ablation] [-json]
//
// With -json, results are emitted as machine-readable JSON (per group:
// name, wall-clock ns, allocation count; per table row: the raw cells plus
// parsed ratio/rounds where the table reports them) for BENCH_*.json
// tracking across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"localmds/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mdsbench: %v\n", err)
		os.Exit(1)
	}
}

// group is one experiment family: a name and a runner producing its tables.
type group struct {
	name string
	run  func() ([]*experiments.Table, error)
}

// rowJSON is one table row with metrics parsed out where available.
type rowJSON struct {
	Name   string   `json:"name"`
	Cells  []string `json:"cells"`
	Ratio  *float64 `json:"ratio,omitempty"`
	Rounds *float64 `json:"rounds,omitempty"`
}

// tableJSON is a rendered table in structured form.
type tableJSON struct {
	Title  string    `json:"title"`
	Header []string  `json:"header"`
	Rows   []rowJSON `json:"rows"`
}

// groupJSON is the machine-readable result of one experiment group.
type groupJSON struct {
	Name     string      `json:"name"`
	NsOp     int64       `json:"ns_op"`
	AllocsOp uint64      `json:"allocs_op"`
	Tables   []tableJSON `json:"tables"`
}

func run() error {
	seed := flag.Int64("seed", 1, "generator seed")
	n := flag.Int("n", 120, "instance size for ratio measurements")
	processN := flag.Int("process-n", 48, "instance size for simulator round measurements")
	only := flag.String("only", "", "run a single experiment group (table1|mvc|lemmas|spqr|prop31|cycle|ablation)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON results")
	flag.Parse()

	cfg := experiments.Table1Config{Seed: *seed, N: *n, ProcessN: *processN}
	one := func(t *experiments.Table, err error) ([]*experiments.Table, error) {
		if err != nil {
			return nil, err
		}
		return []*experiments.Table{t}, nil
	}
	groups := []group{
		{"table1", func() ([]*experiments.Table, error) { return one(experiments.Table1(cfg)) }},
		{"mvc", func() ([]*experiments.Table, error) { return one(experiments.MVCTable(cfg)) }},
		{"lemmas", func() ([]*experiments.Table, error) {
			l32, err := experiments.Lemma32(*seed, []int{*n / 2, *n}, 3)
			if err != nil {
				return nil, fmt.Errorf("lemma 3.2: %w", err)
			}
			l33, err := experiments.Lemma33(*seed, []int{*n / 2, *n}, 3)
			if err != nil {
				return nil, fmt.Errorf("lemma 3.3: %w", err)
			}
			l42, err := experiments.Lemma42(*seed, []int{*n, 2 * *n, 4 * *n})
			if err != nil {
				return nil, fmt.Errorf("lemma 4.2: %w", err)
			}
			l518, err := experiments.Lemma518(*seed, []int{*n / 2, *n}, 5)
			if err != nil {
				return nil, fmt.Errorf("lemma 5.18: %w", err)
			}
			return []*experiments.Table{l32, l33, l42, l518}, nil
		}},
		{"cycle", func() ([]*experiments.Table, error) {
			return []*experiments.Table{experiments.CycleLocalCuts([]int{30, 100, 300, 1000}, 3)}, nil
		}},
		{"spqr", func() ([]*experiments.Table, error) {
			return one(experiments.SPQRStats(*seed, []int{16, 24, 32}))
		}},
		{"prop31", func() ([]*experiments.Table, error) { return one(experiments.Proposition31(cfg)) }},
		{"ablation", func() ([]*experiments.Table, error) {
			rad, err := experiments.RadiusAblation(*seed, *n, []int{2, 3, 4, 5, 6})
			if err != nil {
				return nil, fmt.Errorf("radius ablation: %w", err)
			}
			rvt, err := experiments.RoundsVsT(*seed, *processN, []int{3, 4, 5, 6})
			if err != nil {
				return nil, fmt.Errorf("rounds vs t: %w", err)
			}
			sc, err := experiments.Scaling(*seed, []int{*n, 2 * *n, 4 * *n, 8 * *n})
			if err != nil {
				return nil, fmt.Errorf("scaling: %w", err)
			}
			mf, err := experiments.MessageFootprint(*seed, *processN)
			if err != nil {
				return nil, fmt.Errorf("message footprint: %w", err)
			}
			dt, err := experiments.DensityTable(*seed, *n)
			if err != nil {
				return nil, fmt.Errorf("density table: %w", err)
			}
			bl, err := experiments.Baselines(*seed, []int{*n, 2 * *n, 4 * *n})
			if err != nil {
				return nil, fmt.Errorf("baselines: %w", err)
			}
			return []*experiments.Table{rad, rvt, sc, mf, dt, bl}, nil
		}},
	}

	results := []groupJSON{}
	for _, grp := range groups {
		if *only != "" && *only != grp.name {
			continue
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		tables, err := grp.run()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return fmt.Errorf("%s: %w", grp.name, err)
		}
		if !*jsonOut {
			for _, t := range tables {
				fmt.Println(t.Render())
			}
			continue
		}
		gj := groupJSON{
			Name:     grp.name,
			NsOp:     elapsed.Nanoseconds(),
			AllocsOp: after.Mallocs - before.Mallocs,
		}
		for _, t := range tables {
			gj.Tables = append(gj.Tables, structureTable(t))
		}
		results = append(results, gj)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"results": results})
	}
	return nil
}

// structureTable converts a rendered table into its JSON form, parsing
// ratio and round metrics out of the columns that carry them.
func structureTable(t *experiments.Table) tableJSON {
	tj := tableJSON{Title: t.Title, Header: t.Header}
	ratioCol, roundsCol := -1, -1
	for i, h := range t.Header {
		lh := strings.ToLower(h)
		switch {
		case strings.Contains(lh, "measured ratio") || lh == "ratio":
			ratioCol = i
		case strings.Contains(lh, "measured rounds") || lh == "rounds":
			roundsCol = i
		}
	}
	for _, row := range t.Rows {
		rj := rowJSON{Cells: row}
		if len(row) > 0 {
			rj.Name = row[0]
		}
		if ratioCol >= 0 && ratioCol < len(row) {
			rj.Ratio = parseLeadingFloat(row[ratioCol])
		}
		if roundsCol >= 0 && roundsCol < len(row) {
			rj.Rounds = parseLeadingFloat(row[roundsCol])
		}
		tj.Rows = append(tj.Rows, rj)
	}
	return tj
}

// parseLeadingFloat extracts the first number from a cell like
// "1.23 (37/30)" or "<=14 est"; it returns nil when the cell has none.
func parseLeadingFloat(cell string) *float64 {
	start := -1
	for i, r := range cell {
		if r >= '0' && r <= '9' {
			start = i
			break
		}
	}
	if start < 0 {
		return nil
	}
	end := start
	for end < len(cell) && (cell[end] >= '0' && cell[end] <= '9' || cell[end] == '.') {
		end++
	}
	f, err := strconv.ParseFloat(cell[start:end], 64)
	if err != nil {
		return nil
	}
	return &f
}
