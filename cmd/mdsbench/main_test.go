package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// bench invokes run with small instance sizes so the smoke tests stay
// fast; the flags mirror the CI smoke invocation.
func bench(t *testing.T, extra ...string) string {
	t.Helper()
	var out strings.Builder
	args := append([]string{"-n", "40", "-process-n", "16"}, extra...)
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestParallelMatchesSequential(t *testing.T) {
	seq := bench(t, "-only", "table1", "-parallel", "1")
	for _, workers := range []string{"4", "16"} {
		par := bench(t, "-only", "table1", "-parallel", workers)
		if par != seq {
			t.Errorf("-parallel %s output differs from -parallel 1:\n%s\nvs\n%s", workers, par, seq)
		}
	}
}

func TestRootSeedChangesTables(t *testing.T) {
	a := bench(t, "-only", "spqr", "-seed", "1")
	b := bench(t, "-only", "spqr", "-rootseed", "99")
	if a == b {
		t.Error("different root seeds produced identical tables")
	}
	// -rootseed 0 falls back to -seed.
	c := bench(t, "-only", "spqr", "-seed", "1", "-rootseed", "0")
	if a != c {
		t.Error("-rootseed 0 did not fall back to -seed")
	}
}

func TestJSONOutputParses(t *testing.T) {
	out := bench(t, "-only", "table1", "-json")
	var doc struct {
		Results []struct {
			Name   string `json:"name"`
			NsOp   int64  `json:"ns_op"`
			Tables []struct {
				Title string `json:"title"`
				Rows  []struct {
					Name  string   `json:"name"`
					Cells []string `json:"cells"`
					Ratio *float64 `json:"ratio"`
				} `json:"rows"`
			} `json:"tables"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if len(doc.Results) != 1 || doc.Results[0].Name != "table1" {
		t.Fatalf("unexpected results: %+v", doc.Results)
	}
	rows := doc.Results[0].Tables[0].Rows
	if len(rows) != 13 {
		t.Errorf("table1 has %d rows, want 13", len(rows))
	}
	for _, row := range rows {
		if row.Ratio == nil {
			t.Errorf("row %q missing parsed ratio", row.Name)
		}
	}
}

func TestReplicatesAggregate(t *testing.T) {
	out := bench(t, "-only", "spqr", "-replicates", "3", "-parallel", "4")
	if !strings.Contains(out, "±") {
		t.Errorf("replicated run shows no aggregated cells:\n%s", out)
	}
	// Replication must not change the table shape: same row count as a
	// single-replicate run.
	single := bench(t, "-only", "spqr")
	if got, want := strings.Count(out, "\n"), strings.Count(single, "\n"); got != want {
		t.Errorf("replicated table has %d lines, single-replicate has %d", got, want)
	}
}

// TestStagesGroupExplicitOnly checks the stage-profile group: selectable
// with -only stages, absent from the default sweep (its wall-time cells
// would break the byte-identical-at-any-parallel guarantee).
func TestStagesGroupExplicitOnly(t *testing.T) {
	out := bench(t, "-only", "stages")
	for _, want := range []string{"per-stage profile", "TwinReduce", "ComponentSolve", "multi-component"} {
		if !strings.Contains(out, want) {
			t.Errorf("stages output missing %q:\n%s", want, out)
		}
	}
	full := bench(t) // the default sweep: every group except stages
	if strings.Contains(full, "per-stage profile") {
		t.Error("stage profile leaked into the default sweep")
	}
}

func TestInvalidFlagsError(t *testing.T) {
	cases := [][]string{
		{"-n", "4"},          // below the lemma-sweep floor
		{"-process-n", "0"},  // empty simulator instances
		{"-replicates", "0"}, // no replicates
		{"-parallel", "-2"},  // negative pool
		{"-only", "nosuch"},  // unknown group
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
