// Command mdsingest generates, converts, and benchmarks huge-graph
// instances for the ingestion pipeline (text parse → csrbin → mmap →
// partition-first solve). Every invocation performs one mode and emits a
// single JSON report on stdout, so a shell script can compose runs into a
// BENCH_ingest.json without parsing human-readable logs.
//
// Usage:
//
//	mdsingest -mode gen -edges E -o huge.edges
//	mdsingest -mode parse-seq -in huge.edges [-fingerprint]
//	mdsingest -mode parse     -in huge.edges [-workers W] [-fingerprint]
//	mdsingest -mode convert   -in huge.edges -o huge.csrbin [-workers W]
//	mdsingest -mode load      -in huge.csrbin [-fingerprint]
//	mdsingest -mode solve     -in huge.csrbin [-workers W] [-r1 R] [-r2 R]
//
// Modes:
//
//   - gen: write a deterministic near-planar edge list — disjoint 12x12
//     grid components replicated until the target edge count — without
//     ever holding the graph in memory.
//   - parse-seq: the pre-existing sequential path (graphio.Read + Freeze).
//   - parse: the chunked parallel parser (graphio.ParseCSRFile).
//   - convert: parallel parse, then WriteCSRBinFile.
//   - load: OpenCSRBin — mmap on supported platforms, so the wall time is
//     independent of the graph size.
//   - solve: load (mmap for csrbin, parallel parse for text), then the
//     partition-first driver core.Alg1Huge, validated against the CSR.
//
// wall_seconds always times the mode's headline operation only;
// -fingerprint hashes the loaded CSR *outside* the timed window (it
// touches every page, which would otherwise hide the point of mmap).
// peak_rss_bytes is VmHWM from /proc/self/status (0 where unavailable).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"localmds/internal/core"
	"localmds/internal/graph"
	"localmds/internal/graphio"
	"localmds/internal/mds"
	"localmds/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mdsingest: %v\n", err)
		os.Exit(1)
	}
}

// report is the one-object-per-run JSON contract consumed by
// scripts/bench_ingest.sh.
type report struct {
	Mode         string  `json:"mode"`
	File         string  `json:"file,omitempty"`
	Workers      int     `json:"workers,omitempty"`
	N            int     `json:"n,omitempty"`
	M            int     `json:"m,omitempty"`
	WallSeconds  float64 `json:"wall_seconds"`
	Mapped       *bool   `json:"mapped,omitempty"`
	Fingerprint  string  `json:"fingerprint,omitempty"`
	SolveSeconds float64 `json:"solve_seconds,omitempty"`
	SolutionSize int     `json:"solution_size,omitempty"`
	Valid        *bool   `json:"valid,omitempty"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdsingest", flag.ContinueOnError)
	mode := fs.String("mode", "", "gen|parse-seq|parse|convert|load|solve")
	in := fs.String("in", "", "input graph file")
	out := fs.String("o", "", "output file (gen, convert)")
	format := fs.String("format", "auto", "input encoding: auto|json|edgelist|dimacs|csrbin")
	edges := fs.Int("edges", 100_000_000, "target edge count (gen)")
	workers := fs.Int("workers", 0, "worker count for parallel modes (0: GOMAXPROCS)")
	fingerprint := fs.Bool("fingerprint", false, "hash the loaded CSR (outside the timed window)")
	r1 := fs.Int("r1", 1, "domination radius (solve)")
	r2 := fs.Int("r2", 2, "independence radius (solve)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	rep := report{Mode: *mode, File: *in}
	var err error
	switch *mode {
	case "gen":
		rep.File = *out
		err = runGen(&rep, *out, *edges)
	case "parse-seq":
		err = runParseSeq(&rep, *in, *format, *fingerprint)
	case "parse":
		err = runParse(&rep, *in, *format, *workers, *fingerprint)
	case "convert":
		err = runConvert(&rep, *in, *format, *out, *workers)
	case "load":
		err = runLoad(&rep, *in, *fingerprint)
	case "solve":
		err = runSolve(&rep, *in, *format, *workers, core.Params{R1: *r1, R2: *r2})
	default:
		return fmt.Errorf("unknown -mode %q (want gen|parse-seq|parse|convert|load|solve)", *mode)
	}
	if err != nil {
		return err
	}
	rep.PeakRSSBytes = peakRSS()
	enc := json.NewEncoder(stdout)
	return enc.Encode(rep)
}

// Grid component shape for -mode gen: a 12x12 grid has 144 vertices and
// 264 edges, is planar, and reduces well under the pipeline — replicating
// it keeps the instance near-planar and component-parallel at any scale.
const (
	gridSide      = 12
	gridVertices  = gridSide * gridSide
	gridEdgeCount = 2 * gridSide * (gridSide - 1)
)

// runGen streams k disjoint grid components to out until the edge target
// is met. Purely deterministic and O(1) memory: nothing is ever a Graph.
func runGen(rep *report, out string, edges int) error {
	if out == "" {
		return fmt.Errorf("-mode gen requires -o")
	}
	if edges < 1 {
		return fmt.Errorf("-edges must be >= 1, got %d", edges)
	}
	comps := (edges + gridEdgeCount - 1) / gridEdgeCount
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	start := time.Now()
	buf := make([]byte, 0, 32)
	for c := 0; c < comps; c++ {
		base := c * gridVertices
		for row := 0; row < gridSide; row++ {
			for col := 0; col < gridSide; col++ {
				v := base + row*gridSide + col
				if col+1 < gridSide {
					buf = appendEdge(buf[:0], v, v+1)
					w.Write(buf)
				}
				if row+1 < gridSide {
					buf = appendEdge(buf[:0], v, v+gridSide)
					w.Write(buf)
				}
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	rep.WallSeconds = time.Since(start).Seconds()
	rep.N = comps * gridVertices
	rep.M = comps * gridEdgeCount
	return nil
}

func appendEdge(b []byte, u, v int) []byte {
	b = strconv.AppendInt(b, int64(u), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(v), 10)
	return append(b, '\n')
}

func runParseSeq(rep *report, in, format string, fingerprint bool) error {
	f, err := graphio.ParseFormat(format)
	if err != nil {
		return err
	}
	start := time.Now()
	g, err := graphio.ReadFile(in, f)
	if err != nil {
		return err
	}
	c := g.Freeze()
	rep.WallSeconds = time.Since(start).Seconds()
	finishCSR(rep, c, fingerprint)
	return nil
}

func runParse(rep *report, in, format string, workers int, fingerprint bool) error {
	f, err := graphio.ParseFormat(format)
	if err != nil {
		return err
	}
	pool := runner.NewPool(workers, 4*workers)
	defer pool.Close()
	rep.Workers = workers
	start := time.Now()
	c, err := graphio.ParseCSRFile(in, f, graphio.CSROptions{Pool: pool})
	if err != nil {
		return err
	}
	rep.WallSeconds = time.Since(start).Seconds()
	finishCSR(rep, c, fingerprint)
	return nil
}

func runConvert(rep *report, in, format, out string, workers int) error {
	if out == "" {
		return fmt.Errorf("-mode convert requires -o")
	}
	f, err := graphio.ParseFormat(format)
	if err != nil {
		return err
	}
	pool := runner.NewPool(workers, 4*workers)
	defer pool.Close()
	rep.Workers = workers
	start := time.Now()
	c, err := graphio.ParseCSRFile(in, f, graphio.CSROptions{Pool: pool})
	if err != nil {
		return err
	}
	if err := graphio.WriteCSRBinFile(out, c); err != nil {
		return err
	}
	rep.WallSeconds = time.Since(start).Seconds()
	finishCSR(rep, c, false)
	return nil
}

func runLoad(rep *report, in string, fingerprint bool) error {
	start := time.Now()
	m, err := graphio.OpenCSRBin(in, graphio.OpenOptions{})
	if err != nil {
		return err
	}
	rep.WallSeconds = time.Since(start).Seconds()
	defer m.Close()
	rep.Mapped = &m.Mapped
	finishCSR(rep, &m.CSR, fingerprint)
	return nil
}

func runSolve(rep *report, in, format string, workers int, p core.Params) error {
	pool := runner.NewPool(workers, 4*workers)
	defer pool.Close()
	rep.Workers = workers

	f, err := graphio.ParseFormat(format)
	if err != nil {
		return err
	}
	start := time.Now()
	var csr *graph.CSR
	if f == graphio.FormatCSRBin || (f == graphio.FormatAuto && strings.HasSuffix(in, ".csrbin")) {
		m, err := graphio.OpenCSRBin(in, graphio.OpenOptions{})
		if err != nil {
			return err
		}
		defer m.Close()
		rep.Mapped = &m.Mapped
		csr = &m.CSR
	} else {
		csr, err = graphio.ParseCSRFile(in, f, graphio.CSROptions{Pool: pool})
		if err != nil {
			return err
		}
	}
	rep.WallSeconds = time.Since(start).Seconds()

	solveStart := time.Now()
	res, err := core.Alg1Huge(csr, p, core.HugeOptions{Pool: pool})
	if err != nil {
		return err
	}
	rep.SolveSeconds = time.Since(solveStart).Seconds()
	rep.SolutionSize = len(res.S)
	valid := mds.IsDominatingSetCSR(csr, res.S)
	rep.Valid = &valid
	finishCSR(rep, csr, false)
	return nil
}

// finishCSR records the graph-shaped fields shared by every loading mode.
func finishCSR(rep *report, c *graph.CSR, fingerprint bool) {
	rep.N = c.N()
	rep.M = len(c.Targets) / 2
	if fingerprint {
		fp := c.Fingerprint()
		rep.Fingerprint = fp.String()
	}
}

// peakRSS reads VmHWM (peak resident set) from /proc/self/status,
// returning 0 on platforms without procfs.
func peakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
