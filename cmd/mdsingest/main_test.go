package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// runJSON runs one mdsingest mode and decodes its JSON report.
func runJSON(t *testing.T, args ...string) report {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("run(%v) emitted invalid JSON %q: %v", args, out.String(), err)
	}
	return rep
}

// TestPipelineEndToEnd drives every mode over one small instance: the
// generated component counts are exact, all three loading paths agree on
// the fingerprint, and the solve validates.
func TestPipelineEndToEnd(t *testing.T) {
	dir := t.TempDir()
	edges := filepath.Join(dir, "g.edges")
	bin := filepath.Join(dir, "g.csrbin")

	gen := runJSON(t, "-mode", "gen", "-edges", "1000", "-o", edges)
	// 1000 edges round up to 4 grid components.
	if gen.N != 4*gridVertices || gen.M != 4*gridEdgeCount {
		t.Fatalf("gen n=%d m=%d, want %d/%d", gen.N, gen.M, 4*gridVertices, 4*gridEdgeCount)
	}

	seq := runJSON(t, "-mode", "parse-seq", "-in", edges, "-fingerprint")
	par := runJSON(t, "-mode", "parse", "-in", edges, "-workers", "3", "-fingerprint")
	conv := runJSON(t, "-mode", "convert", "-in", edges, "-o", bin)
	load := runJSON(t, "-mode", "load", "-in", bin, "-fingerprint")
	if seq.Fingerprint == "" || seq.Fingerprint != par.Fingerprint || seq.Fingerprint != load.Fingerprint {
		t.Fatalf("fingerprints diverge: seq=%s par=%s load=%s",
			seq.Fingerprint, par.Fingerprint, load.Fingerprint)
	}
	for _, rep := range []report{seq, par, conv, load} {
		if rep.N != gen.N || rep.M != gen.M {
			t.Fatalf("%s: n=%d m=%d, want %d/%d", rep.Mode, rep.N, rep.M, gen.N, gen.M)
		}
	}

	solve := runJSON(t, "-mode", "solve", "-in", bin, "-workers", "2", "-r1", "1", "-r2", "2")
	if solve.Valid == nil || !*solve.Valid {
		t.Fatalf("solve did not validate: %+v", solve)
	}
	if solve.SolutionSize < 1 {
		t.Fatalf("empty solution: %+v", solve)
	}
}

// TestBadModeAndMissingArgs: argument errors are clean, not panics.
func TestBadModeAndMissingArgs(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "nope"}, &out); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run([]string{"-mode", "gen"}, &out); err == nil {
		t.Fatal("gen without -o accepted")
	}
	if err := run([]string{"-mode", "convert", "-in", "x"}, &out); err == nil {
		t.Fatal("convert without -o accepted")
	}
}
