package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-queue", "0"},
		{"-cache", "0"},
		{"-workers", "-1"},
		{"-timeout", "-1s"},
		{"-addr", "not-an-address"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Fatalf("run(%v): want error", args)
		}
	}
	// -h prints usage and exits cleanly.
	var out bytes.Buffer
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("run(-h): %v", err)
	}
}

// syncBuffer lets the daemon goroutine write stdout while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeSolveAndGracefulDrain boots the daemon on an ephemeral port,
// solves one edge list over HTTP, then delivers SIGTERM and expects a
// clean drain.
func TestServeSolveAndGracefulDrain(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, &out)
	}()

	// Wait for the listening line to learn the port.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output: %q", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "mdsd: listening on "); ok {
				addr = rest
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	body := `{"data": "0 1\n1 2\n2 3\n3 0\n"}`
	resp, err := http.Post("http://"+addr+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		Status string `json:"status"`
		Valid  bool   `json:"valid"`
		Result struct {
			S []int `json:"s"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || view.Status != "done" || !view.Valid {
		t.Fatalf("solve over the daemon failed: %d %+v", resp.StatusCode, view)
	}
	if len(view.Result.S) == 0 {
		t.Fatalf("empty dominating set for C4: %+v", view)
	}

	// SIGTERM → graceful drain → clean exit.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM; output: %q", out.String())
	}
	if !strings.Contains(out.String(), "drained, bye") {
		t.Fatalf("missing drain log: %q", out.String())
	}
}
