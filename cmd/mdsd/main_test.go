package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-queue", "0"},
		{"-cache", "0"},
		{"-workers", "-1"},
		{"-timeout", "-1s"},
		{"-addr", "not-an-address"},
		{"-read-timeout", "-1s"},
		{"-idle-timeout", "-5s"},
		{"-rate", "-2"},
		{"-rate-burst", "-1"},
		{"-tenant-jobs", "-1"},
		{"-auth-tokens", "/no/such/token/file"},
		{"-admin-addr", "not-an-address"},
		{"-store-max-bytes", "-1"},
		{"-store-max-bytes", "4096"}, // byte budget without a directory
		{"-store-fsync", "sometimes"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Fatalf("run(%v): want error", args)
		}
	}
	// -store-dir pointing at a plain file fails Open's writability probe.
	plain := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out2 bytes.Buffer
	if err := run([]string{"-store-dir", plain}, &out2); err == nil {
		t.Fatal("run(-store-dir <file>): want error")
	}
	// -h prints usage and exits cleanly.
	var out bytes.Buffer
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("run(-h): %v", err)
	}
}

// syncBuffer lets the daemon goroutine write stdout while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitForAddr polls the daemon's stdout for an announcement line with
// the given prefix and returns the address it reports.
func waitForAddr(t *testing.T, out *syncBuffer, prefix string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				return rest
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced %q; output: %q", prefix, out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeSolveAndGracefulDrain boots the daemon on an ephemeral port
// (with the slowloris read/idle timeouts set), solves one edge list over
// HTTP, then delivers SIGTERM and expects a clean drain.
func TestServeSolveAndGracefulDrain(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2",
			"-read-timeout", "5s", "-idle-timeout", "5s"}, &out)
	}()
	addr := waitForAddr(t, &out, "mdsd: listening on ")

	body := `{"data": "0 1\n1 2\n2 3\n3 0\n"}`
	resp, err := http.Post("http://"+addr+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		Status string `json:"status"`
		Valid  bool   `json:"valid"`
		Result struct {
			S []int `json:"s"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || view.Status != "done" || !view.Valid {
		t.Fatalf("solve over the daemon failed: %d %+v", resp.StatusCode, view)
	}
	if len(view.Result.S) == 0 {
		t.Fatalf("empty dominating set for C4: %+v", view)
	}

	// SIGTERM → graceful drain → clean exit.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM; output: %q", out.String())
	}
	if !strings.Contains(out.String(), "drained, bye") {
		t.Fatalf("missing drain log: %q", out.String())
	}
}

// TestStoreWarmRestart boots the daemon with -store-dir, solves once,
// drains it, boots a fresh daemon on the same directory, and expects the
// repeat solve to be served from the persisted store without recompute.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	body := `{"data": "0 1\n1 2\n2 3\n3 0\n"}`
	solve := func(addr string) (cached bool, age float64) {
		t.Helper()
		resp, err := http.Post("http://"+addr+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var view struct {
			Status    string   `json:"status"`
			Cached    bool     `json:"cached"`
			CacheAgeS *float64 `json:"cache_age_s"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || view.Status != "done" {
			t.Fatalf("solve: %d %+v", resp.StatusCode, view)
		}
		if view.CacheAgeS != nil {
			age = *view.CacheAgeS
		}
		return view.Cached, age
	}
	boot := func() (*syncBuffer, chan error, string) {
		var out syncBuffer
		done := make(chan error, 1)
		go func() {
			done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-store-dir", dir}, &out)
		}()
		return &out, done, waitForAddr(t, &out, "mdsd: listening on ")
	}
	stop := func(out *syncBuffer, done chan error) {
		t.Helper()
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("daemon did not drain; output: %q", out.String())
		}
	}

	out1, done1, addr1 := boot()
	if cached, _ := solve(addr1); cached {
		t.Fatal("first solve reported cached")
	}
	stop(out1, done1)

	out2, done2, addr2 := boot()
	if !strings.Contains(out2.String(), "result store "+dir+": 1 entries") {
		t.Fatalf("restart did not announce the persisted entry: %q", out2.String())
	}
	cached, age := solve(addr2)
	if !cached || age <= 0 {
		t.Fatalf("warm restart: cached=%v cache_age_s=%v, want a persisted hit with positive age", cached, age)
	}
	stop(out2, done2)
}

// TestDrainMidBatch delivers SIGTERM while async batch jobs are still
// running: the daemon must keep /v1/jobs/{id} answering and shed new
// solves with 503 during the drain, finish every accepted job, and exit
// cleanly without panicking the pool.
func TestDrainMidBatch(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "8"}, &out)
	}()
	addr := waitForAddr(t, &out, "mdsd: listening on ")
	base := "http://" + addr

	// Three distinct ~0.5-1s grid solves on one worker: a multi-second
	// drain window after the signal lands.
	batch := `{"requests": [
		{"generator": {"kind": "grid", "n": 2500}},
		{"generator": {"kind": "grid", "n": 2601}},
		{"generator": {"kind": "grid", "n": 2704}}
	]}`
	resp, err := http.Post(base+"/v1/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	var accepted struct {
		Jobs []struct {
			JobID  string `json:"job_id"`
			Status string `json:"status"`
			Error  string `json:"error"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || len(accepted.Jobs) != 3 {
		t.Fatalf("batch: %d %+v", resp.StatusCode, accepted)
	}
	for _, j := range accepted.Jobs {
		if j.Status == "failed" {
			t.Fatalf("batch entry failed at submit: %+v", j)
		}
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// While draining, the listener is still up: new work is shed with
	// 503 + Retry-After and job polling keeps answering.
	sawShed, sawPoll, exited := false, false, false
	for !exited && !(sawShed && sawPoll) {
		select {
		case err := <-done:
			// The daemon finished draining before we observed both
			// behaviors — jobs were faster than the signal; the strong
			// mid-drain assertions live in the service-level
			// TestDrainWhileBusy with a stubbed solver.
			if err != nil {
				t.Fatalf("run returned %v", err)
			}
			t.Logf("drain finished early (sawShed=%v sawPoll=%v)", sawShed, sawPoll)
			exited = true
			continue
		default:
		}
		if !sawShed {
			r, err := http.Post(base+"/v1/solve", "application/json",
				strings.NewReader(`{"generator": {"kind": "grid", "n": 3600}}`))
			if err == nil {
				if r.StatusCode == http.StatusServiceUnavailable {
					if r.Header.Get("Retry-After") == "" {
						t.Error("drain 503 without Retry-After")
					}
					sawShed = true
				}
				r.Body.Close()
			}
		}
		if !sawPoll {
			r, err := http.Get(base + "/v1/jobs/" + accepted.Jobs[2].JobID)
			if err == nil {
				if r.StatusCode == http.StatusOK {
					sawPoll = true
				}
				r.Body.Close()
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	if !exited {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("daemon did not finish draining; output: %q", out.String())
		}
	}
	text := out.String()
	if !strings.Contains(text, "drained, bye") {
		t.Fatalf("missing drain log: %q", text)
	}
	if strings.Contains(text, "panic") {
		t.Fatalf("pool panicked during drain: %q", text)
	}
}
