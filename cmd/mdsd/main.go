// Command mdsd is the long-running solve daemon: an HTTP/JSON service
// accepting Algorithm 1 solve requests (inline graph, edge-list/DIMACS/
// JSON payload, or generator spec) on a bounded job queue, with a
// content-addressed LRU result cache so identical graphs are never
// recomputed, and per-stage pipeline diagnostics in every response.
//
// Usage:
//
//	mdsd [-addr :8377] [-workers W] [-queue Q] [-cache N]
//	     [-timeout D] [-pipeline-workers W]
//
// Endpoints: POST /v1/solve, POST /v1/batch, GET /v1/jobs/{id},
// GET /healthz, GET /metrics. See EXPERIMENTS.md ("Serving") for curl
// examples.
//
// SIGTERM/SIGINT drain gracefully: the listener closes, accepted jobs
// finish, then the process exits. A second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"localmds/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mdsd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdsd", flag.ContinueOnError)
	addr := fs.String("addr", ":8377", "listen address")
	workers := fs.Int("workers", 0, "solver pool size (0: all cores)")
	queue := fs.Int("queue", 64, "max queued jobs beyond the running ones (full queue sheds with 503)")
	cacheEntries := fs.Int("cache", 256, "content-addressed result cache capacity (entries)")
	timeout := fs.Duration("timeout", 0, "per-job solve timeout (0: unbounded)")
	pipelineWorkers := fs.Int("pipeline-workers", 1, "ComponentSolve fan-out per job (1: scale across requests, not within one)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *workers < 0 || *queue < 1 || *cacheEntries < 1 || *pipelineWorkers < 0 {
		return fmt.Errorf("-workers and -pipeline-workers must be >= 0, -queue and -cache >= 1")
	}
	if *timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0, got %v", *timeout)
	}

	svc := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cacheEntries,
		JobTimeout:      *timeout,
		PipelineWorkers: *pipelineWorkers,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "mdsd: listening on %s\n", ln.Addr())

	select {
	case err := <-serveErr:
		svc.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight HTTP exchanges and
	// accepted jobs finish. A second signal (stop() restored default
	// handling) kills the process the usual way.
	stop()
	fmt.Fprintf(stdout, "mdsd: draining (signal received)\n")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		svc.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	svc.Drain()
	fmt.Fprintf(stdout, "mdsd: drained, bye\n")
	return nil
}
