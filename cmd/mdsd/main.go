// Command mdsd is the long-running solve daemon: an HTTP/JSON service
// accepting Algorithm 1 solve requests (inline graph, edge-list/DIMACS/
// JSON payload, or generator spec) on a bounded job queue, with a
// content-addressed LRU result cache so identical graphs are never
// recomputed, and per-stage pipeline diagnostics in every response.
//
// Usage:
//
//	mdsd [-addr :8377] [-workers W] [-queue Q] [-cache N]
//	     [-timeout D] [-pipeline-workers W]
//	     [-auth-tokens FILE] [-rate R] [-rate-burst B] [-tenant-jobs N]
//	     [-read-timeout D] [-idle-timeout D] [-admin-addr HOST:PORT]
//	     [-log-requests] [-events-buffer N]
//	     [-store-dir DIR] [-store-max-bytes N] [-store-fsync always|none]
//
// With -store-dir, completed results are persisted to a crash-safe
// content-addressed disk store (internal/store) under the in-memory
// cache: a restart on the same directory serves previously computed
// results without recompute, corrupt or truncated entries found at
// startup are quarantined (never served), and any store I/O failure at
// runtime degrades the daemon to memory-only caching — reported on
// /healthz, /metrics (mdsd_store_degraded), and /v1/events — without
// failing requests.
//
// Endpoints: POST /v1/solve, POST /v1/batch, GET /v1/jobs/{id},
// GET /v1/jobs/{id}/trace (span tree, ?format=chrome for Perfetto),
// GET /v1/events (SSE job-lifecycle stream, ring-buffered for late
// subscribers, ?after=seq to resume), GET /healthz, GET /metrics
// (latency histograms and runtime gauges included). With -auth-tokens
// (one "tenant:token" per line) the /v1/* surface requires
// "Authorization: Bearer <token>";
// -rate/-rate-burst and -tenant-jobs bound each tenant with 429 +
// Retry-After. -admin-addr exposes /debug/pprof/* (plus /healthz and
// /metrics) on a separate operator listener. See EXPERIMENTS.md
// ("Serving", "Hardening & saturation") for curl examples.
//
// SIGTERM/SIGINT drain gracefully: new work is shed with 503 while
// accepted jobs finish and stay pollable, then the listener closes and
// the process exits. A second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"localmds/internal/service"
	"localmds/internal/store"
)

// buildVersion is reported in the mdsd_build_info metric; override at
// build time with -ldflags "-X main.buildVersion=v1.2.3".
var buildVersion = "dev"

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mdsd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdsd", flag.ContinueOnError)
	addr := fs.String("addr", ":8377", "listen address")
	workers := fs.Int("workers", 0, "solver pool size (0: all cores)")
	queue := fs.Int("queue", 64, "max queued jobs beyond the running ones (full queue sheds with 503)")
	cacheEntries := fs.Int("cache", 256, "content-addressed result cache capacity (entries)")
	timeout := fs.Duration("timeout", 0, "per-job solve timeout (0: unbounded)")
	pipelineWorkers := fs.Int("pipeline-workers", 1, "ComponentSolve fan-out per job (1: scale across requests, not within one)")
	authTokens := fs.String("auth-tokens", "", "bearer-token file, one tenant:token per line (empty: anonymous tier)")
	rate := fs.Float64("rate", 0, "per-tenant request rate limit in req/s (0: unlimited)")
	rateBurst := fs.Int("rate-burst", 0, "per-tenant rate-limit burst (0: derived from -rate)")
	tenantJobs := fs.Int("tenant-jobs", 0, "per-tenant in-flight job quota, 429 when exhausted (0: unlimited)")
	readTimeout := fs.Duration("read-timeout", time.Minute, "read deadline for request headers and bodies, slowloris guard (0: none)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "keep-alive connection idle deadline (0: none)")
	adminAddr := fs.String("admin-addr", "", "separate admin listener for /debug/pprof/, /healthz, /metrics (empty: disabled)")
	logRequests := fs.Bool("log-requests", false, "emit one structured JSON log line per request to stderr")
	eventsBuffer := fs.Int("events-buffer", 256, "job-lifecycle events retained for late /v1/events subscribers")
	storeDir := fs.String("store-dir", "", "durable result-store directory; restarts on the same directory serve persisted results without recompute (empty: memory-only)")
	storeMaxBytes := fs.Int64("store-max-bytes", 0, "on-disk result-store byte budget, LRU-evicted (0: unlimited; requires -store-dir)")
	storeFsync := fs.String("store-fsync", "always", "result-store durability: always (fsync before a result is acknowledged) or none (atomic but may lose recent results on crash)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *workers < 0 || *queue < 1 || *cacheEntries < 1 || *pipelineWorkers < 0 {
		return fmt.Errorf("-workers and -pipeline-workers must be >= 0, -queue and -cache >= 1")
	}
	if *timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0, got %v", *timeout)
	}
	if *readTimeout < 0 || *idleTimeout < 0 {
		return fmt.Errorf("-read-timeout and -idle-timeout must be >= 0, got %v and %v", *readTimeout, *idleTimeout)
	}
	if *rate < 0 || *rateBurst < 0 || *tenantJobs < 0 {
		return fmt.Errorf("-rate, -rate-burst, and -tenant-jobs must be >= 0")
	}
	if *eventsBuffer < 1 {
		return fmt.Errorf("-events-buffer must be >= 1, got %d", *eventsBuffer)
	}
	if *storeMaxBytes < 0 {
		return fmt.Errorf("-store-max-bytes must be >= 0, got %d", *storeMaxBytes)
	}
	if *storeMaxBytes > 0 && *storeDir == "" {
		return fmt.Errorf("-store-max-bytes requires -store-dir")
	}
	fsyncPolicy, err := store.ParseFsyncPolicy(*storeFsync)
	if err != nil {
		return fmt.Errorf("-store-fsync: %w", err)
	}

	cfg := service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *cacheEntries,
		JobTimeout:       *timeout,
		PipelineWorkers:  *pipelineWorkers,
		RatePerSec:       *rate,
		RateBurst:        *rateBurst,
		MaxJobsPerTenant: *tenantJobs,
		EventBuffer:      *eventsBuffer,
		Version:          buildVersion,
	}
	if *authTokens != "" {
		tokens, err := service.LoadTokens(*authTokens)
		if err != nil {
			return fmt.Errorf("-auth-tokens: %w", err)
		}
		cfg.Tokens = tokens
	}
	if *logRequests {
		cfg.AccessLog = os.Stderr
	}
	if *storeDir != "" {
		// Open fails fast on an uncreatable or unwritable directory (it
		// probes with a real write) and quarantines any invalid entries it
		// finds, so the daemon never boots half-durable by accident.
		st, err := store.Open(store.Options{Dir: *storeDir, MaxBytes: *storeMaxBytes, Fsync: fsyncPolicy})
		if err != nil {
			return fmt.Errorf("-store-dir: %w", err)
		}
		cfg.Store = st
		stats := st.Stats()
		fmt.Fprintf(stdout, "mdsd: result store %s: %d entries (%d bytes), %d quarantined, fsync=%s\n",
			*storeDir, stats.Entries, stats.Bytes, stats.Quarantined, fsyncPolicy)
	}
	svc := service.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// ReadHeaderTimeout defeats slowloris clients that trickle header
	// bytes; ReadTimeout additionally bounds body upload time and
	// IdleTimeout reclaims idle keep-alive connections. All three were
	// previously zero, i.e. a single hostile connection could be held
	// open forever.
	headerTimeout := 10 * time.Second
	if *readTimeout > 0 && *readTimeout < headerTimeout {
		headerTimeout = *readTimeout
	}
	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: headerTimeout,
		IdleTimeout:       *idleTimeout,
	}

	var adminSrv *http.Server
	if *adminAddr != "" {
		adminLn, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return fmt.Errorf("-admin-addr: %w", err)
		}
		adminSrv = &http.Server{
			Handler:           svc.AdminHandler(),
			ReadHeaderTimeout: headerTimeout,
			IdleTimeout:       *idleTimeout,
		}
		//mdsvet:ignore boundedgo -- one accept-loop goroutine per process lifetime for the admin listener, not request-scoped
		go func() { _ = adminSrv.Serve(adminLn) }()
		fmt.Fprintf(stdout, "mdsd: admin on %s\n", adminLn.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	//mdsvet:ignore boundedgo -- one accept-loop goroutine per process lifetime; request concurrency is bounded inside the service by runner.Pool
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "mdsd: listening on %s\n", ln.Addr())

	select {
	case err := <-serveErr:
		svc.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain, listener-last: new submissions shed with 503 while
	// accepted jobs finish, and /v1/jobs/{id} keeps answering until every
	// job is terminal; only then does the listener close. A second signal
	// (stop() restored default handling) kills the process the usual way.
	stop()
	fmt.Fprintf(stdout, "mdsd: draining (signal received)\n")
	svc.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if adminSrv != nil {
		_ = adminSrv.Shutdown(shutdownCtx)
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		svc.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintf(stdout, "mdsd: drained, bye\n")
	return nil
}
