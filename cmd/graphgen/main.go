// Command graphgen emits workload graphs as JSON (the format graph.ReadJSON
// accepts), plain edge lists, DIMACS, the binary csrbin encoding, or
// Graphviz DOT — either generating them or converting a graph read from a
// file or stdin.
//
// Usage:
//
//	graphgen -kind ding|cactus|tree|cycle|grid|outerplanar|cliquependants|gnp \
//	         [-n N] [-t T] [-seed S] [-p P] \
//	         [-in graph|-] [-informat auto|json|edgelist|dimacs|csrbin] \
//	         [-format json|dot|edgelist|dimacs|csrbin] [-o out]
//
// With -in, graphgen converts instead of generating: the input encoding is
// auto-detected (or pinned with -informat) and malformed input exits 1
// with a line/column message. -oformat is an alias for -format, so any
// generator or text input can be pre-baked once into csrbin
// (graphgen -in huge.edges -oformat csrbin -o huge.csrbin) and re-solved
// cheaply through mdsrun's mmap loader.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"localmds/internal/gen"
	"localmds/internal/graph"
	"localmds/internal/graphio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	kind := fs.String("kind", "ding", "generator kind: "+gen.Kinds)
	n := fs.Int("n", 60, "target size")
	tParam := fs.Int("t", 5, "K_{2,t} parameter (ding)")
	seed := fs.Int64("seed", 1, "seed")
	p := fs.Float64("p", 0.05, "edge probability (gnp)")
	in := fs.String("in", "", "convert a graph read from this file (\"-\": stdin) instead of generating")
	informat := fs.String("informat", "auto", "input encoding for -in: auto|json|edgelist|dimacs|csrbin")
	format := fs.String("format", "json", "output format: json|dot|edgelist|dimacs|csrbin")
	oformat := fs.String("oformat", "", "alias for -format")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h prints usage and exits 0, as before the FlagSet refactor
		}
		return err
	}
	if *in == "" {
		if *n < 1 {
			return fmt.Errorf("-n must be >= 1, got %d", *n)
		}
		if *kind == "ding" && *tParam < 3 {
			return fmt.Errorf("-t must be >= 3 for the ding generator, got %d", *tParam)
		}
		if *p < 0 || *p > 1 {
			return fmt.Errorf("-p must be a probability in [0, 1], got %g", *p)
		}
	}

	g, err := loadOrGenerate(*in, *informat, *kind, *n, *tParam, *p, *seed)
	if err != nil {
		return err
	}

	if *oformat != "" {
		*format = *oformat
	}
	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		return g.WriteJSON(w)
	case "edgelist":
		return graphio.WriteEdgeList(w, g)
	case "dimacs":
		return graphio.WriteDIMACS(w, g)
	case "csrbin":
		return graphio.WriteCSRBin(w, g.Freeze())
	case "dot":
		_, err := io.WriteString(w, g.DOT(*kind, nil))
		return err
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// loadOrGenerate converts from -in (any graphio format) or generates via
// the shared gen.FromKind dispatch.
func loadOrGenerate(in, informat, kind string, n, tParam int, p float64, seed int64) (*graph.Graph, error) {
	if in == "" {
		return gen.FromKind(kind, n, tParam, p, rand.New(rand.NewSource(seed)))
	}
	f, err := graphio.ParseFormat(informat)
	if err != nil {
		return nil, err
	}
	return graphio.ReadFile(in, f)
}
