// Command graphgen emits workload graphs as JSON (the format graph.ReadJSON
// accepts) or Graphviz DOT.
//
// Usage:
//
//	graphgen -kind ding|cactus|tree|cycle|grid|outerplanar|cliquependants|gnp \
//	         [-n N] [-t T] [-seed S] [-p P] [-format json|dot] [-o out]
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"localmds/internal/ding"
	"localmds/internal/gen"
	"localmds/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	kind := flag.String("kind", "ding", "generator kind")
	n := flag.Int("n", 60, "target size")
	tParam := flag.Int("t", 5, "K_{2,t} parameter (ding)")
	seed := flag.Int64("seed", 1, "seed")
	p := flag.Float64("p", 0.05, "edge probability (gnp)")
	format := flag.String("format", "json", "output format: json|dot")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *graph.Graph
	var err error
	switch *kind {
	case "ding":
		g, err = ding.Generate(ding.Config{Kind: ding.Mixed, N: *n, T: *tParam}, rng)
	case "cactus":
		g = gen.RandomCactus(*n, rng)
	case "tree":
		g = gen.RandomTree(*n, rng)
	case "cycle":
		g = gen.Cycle(*n)
	case "grid":
		side := 1
		for (side+1)*(side+1) <= *n {
			side++
		}
		g = gen.Grid(side, side)
	case "outerplanar":
		g = gen.MaximalOuterplanar(*n, rng)
	case "cliquependants":
		g = gen.CliquePendants(*n / 2)
	case "gnp":
		g = gen.GNPConnected(*n, *p, rng)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		return g.WriteJSON(w)
	case "dot":
		_, err := io.WriteString(w, g.DOT(*kind, nil))
		return err
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
