package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestConvertBetweenFormats: generate once, then convert json → edgelist
// → dimacs → json through -in/-format and confirm the graph survives.
func TestConvertBetweenFormats(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "g.json")
	var out strings.Builder
	if err := run([]string{"-kind", "grid", "-n", "20", "-o", jsonPath}, &out); err != nil {
		t.Fatalf("generate: %v", err)
	}
	elPath := filepath.Join(dir, "g.edges")
	if err := run([]string{"-in", jsonPath, "-format", "edgelist", "-o", elPath}, &out); err != nil {
		t.Fatalf("to edgelist: %v", err)
	}
	dimacsPath := filepath.Join(dir, "g.dimacs")
	if err := run([]string{"-in", elPath, "-format", "dimacs", "-o", dimacsPath}, &out); err != nil {
		t.Fatalf("to dimacs: %v", err)
	}
	var back strings.Builder
	if err := run([]string{"-in", dimacsPath, "-format", "json"}, &back); err != nil {
		t.Fatalf("back to json: %v", err)
	}
	orig, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(back.String()) != strings.TrimSpace(string(orig)) {
		t.Fatalf("round trip changed the graph:\n%s\nvs\n%s", orig, back.String())
	}
}

// TestEmitEdgeListAndDIMACS: the new output formats have the expected
// shapes.
func TestEmitEdgeListAndDIMACS(t *testing.T) {
	var el strings.Builder
	if err := run([]string{"-kind", "cycle", "-n", "5", "-format", "edgelist"}, &el); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(el.String(), "5\n0 1\n") {
		t.Fatalf("edge list shape: %q", el.String())
	}
	var dim strings.Builder
	if err := run([]string{"-kind", "cycle", "-n", "5", "-format", "dimacs"}, &dim); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dim.String(), "p edge 5 5\ne 1 2\n") {
		t.Fatalf("dimacs shape: %q", dim.String())
	}
}

// TestCSRBinConvertRoundTrip: -oformat csrbin pre-bakes a binary file,
// and converting it back to JSON reproduces the directly-generated JSON —
// the pre-baking pipeline the huge solve path depends on.
func TestCSRBinConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	binPath := filepath.Join(dir, "g.csrbin")
	var out strings.Builder
	if err := run([]string{"-kind", "grid", "-n", "30", "-oformat", "csrbin", "-o", binPath}, &out); err != nil {
		t.Fatalf("generate csrbin: %v", err)
	}
	var direct strings.Builder
	if err := run([]string{"-kind", "grid", "-n", "30", "-format", "json"}, &direct); err != nil {
		t.Fatal(err)
	}
	for _, informat := range []string{"auto", "csrbin"} {
		var back strings.Builder
		if err := run([]string{"-in", binPath, "-informat", informat, "-format", "json"}, &back); err != nil {
			t.Fatalf("csrbin back to json (-informat %s): %v", informat, err)
		}
		if back.String() != direct.String() {
			t.Fatalf("-informat %s: csrbin round trip changed the graph", informat)
		}
	}
}

// TestConvertMalformedErrorsCleanly: a broken input exits with a located
// error, never a panic.
func TestConvertMalformedErrorsCleanly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("0 1\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-in", path, "-format", "json"}, &out)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-located error, got %v", err)
	}
}
