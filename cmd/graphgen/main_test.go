package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"localmds/internal/graph"
)

func TestGenerateJSONRoundTrip(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "cycle", "-n", "12"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	g, err := graph.ReadJSON(strings.NewReader(out.String()))
	if err != nil {
		t.Fatalf("ReadJSON of generated output: %v", err)
	}
	if g.N() != 12 || g.M() != 12 {
		t.Errorf("cycle n=12 decoded as n=%d m=%d", g.N(), g.M())
	}
}

func TestGenerateSeededDeterminism(t *testing.T) {
	gen := func() string {
		var out strings.Builder
		if err := run([]string{"-kind", "tree", "-n", "30", "-seed", "7"}, &out); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	if gen() != gen() {
		t.Error("same seed produced different graphs")
	}
}

func TestGenerateDOT(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "grid", "-n", "9", "-format", "dot"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.HasPrefix(out.String(), "graph ") {
		t.Errorf("DOT output does not start with a graph header: %q", out.String()[:20])
	}
}

func TestGenerateToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.json")
	var out strings.Builder
	if err := run([]string{"-kind", "cactus", "-n", "20", "-o", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("output file: %v", err)
	}
	defer f.Close()
	if _, err := graph.ReadJSON(f); err != nil {
		t.Errorf("output file does not decode: %v", err)
	}
}

func TestInvalidInputsErrorCleanly(t *testing.T) {
	cases := [][]string{
		{"-n", "-5"},                           // negative size, any kind
		{"-kind", "tree", "-n", "0"},           // zero size
		{"-kind", "cycle", "-n", "2"},          // below the generator's minimum (panics in gen)
		{"-kind", "ding", "-t", "2"},           // invalid K_{2,t} parameter
		{"-kind", "gnp", "-p", "1.5"},          // not a probability
		{"-kind", "nosuch"},                    // unknown generator
		{"-format", "yaml", "-n", "10"},        // unknown format
		{"-kind", "cliquependants", "-n", "2"}, // q = 1 < 2 (panics in gen)
	}
	for _, args := range cases {
		var out strings.Builder
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("run(%v) panicked: %v", args, r)
				}
			}()
			return run(args, &out)
		}()
		if err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
