// Command mdsvet is the repo's static-analysis gate: the custom
// determinism/service-invariant analyzers from internal/analysis
// (mapiter, seedflow, errpath, boundedgo, edgesiter, directivecheck)
// bundled with the stock go-vet passes, run over the whole module.
//
// Usage:
//
//	go run ./cmd/mdsvet ./...
//
// With package patterns, mdsvet re-executes itself through
// `go vet -vettool=<self> <patterns>`, which handles loading, export
// data, and fact propagation; invoked by the go command it speaks the
// unitchecker vettool protocol. Exit status is nonzero on any finding,
// which is what CI enforces.
//
// The stock nilness and shadow passes are not bundled: this build runs
// against the x/tools subset vendored from the Go toolchain (the only
// copy available offline), which does not ship them. The vendored
// passes below are the full go-vet suite plus appends/defers/slog etc.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	goanalysis "golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/appends"
	"golang.org/x/tools/go/analysis/passes/asmdecl"
	"golang.org/x/tools/go/analysis/passes/assign"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/bools"
	"golang.org/x/tools/go/analysis/passes/buildtag"
	"golang.org/x/tools/go/analysis/passes/composite"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/defers"
	"golang.org/x/tools/go/analysis/passes/directive"
	"golang.org/x/tools/go/analysis/passes/errorsas"
	"golang.org/x/tools/go/analysis/passes/httpresponse"
	"golang.org/x/tools/go/analysis/passes/ifaceassert"
	"golang.org/x/tools/go/analysis/passes/loopclosure"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/nilfunc"
	"golang.org/x/tools/go/analysis/passes/printf"
	"golang.org/x/tools/go/analysis/passes/shift"
	"golang.org/x/tools/go/analysis/passes/sigchanyzer"
	"golang.org/x/tools/go/analysis/passes/slog"
	"golang.org/x/tools/go/analysis/passes/stdmethods"
	"golang.org/x/tools/go/analysis/passes/stringintconv"
	"golang.org/x/tools/go/analysis/passes/structtag"
	"golang.org/x/tools/go/analysis/passes/testinggoroutine"
	"golang.org/x/tools/go/analysis/passes/tests"
	"golang.org/x/tools/go/analysis/passes/timeformat"
	"golang.org/x/tools/go/analysis/passes/unmarshal"
	"golang.org/x/tools/go/analysis/passes/unreachable"
	"golang.org/x/tools/go/analysis/passes/unsafeptr"
	"golang.org/x/tools/go/analysis/passes/unusedresult"
	"golang.org/x/tools/go/analysis/unitchecker"

	"localmds/internal/analysis"
)

// suite is every analyzer mdsvet runs: the repo-specific invariants
// first, then the stock correctness passes.
func suite() []*goanalysis.Analyzer {
	return append(analysis.Analyzers(),
		appends.Analyzer,
		asmdecl.Analyzer,
		assign.Analyzer,
		atomic.Analyzer,
		bools.Analyzer,
		buildtag.Analyzer,
		composite.Analyzer,
		copylock.Analyzer,
		defers.Analyzer,
		directive.Analyzer,
		errorsas.Analyzer,
		httpresponse.Analyzer,
		ifaceassert.Analyzer,
		loopclosure.Analyzer,
		lostcancel.Analyzer,
		nilfunc.Analyzer,
		printf.Analyzer,
		shift.Analyzer,
		sigchanyzer.Analyzer,
		slog.Analyzer,
		stdmethods.Analyzer,
		stringintconv.Analyzer,
		structtag.Analyzer,
		testinggoroutine.Analyzer,
		tests.Analyzer,
		timeformat.Analyzer,
		unmarshal.Analyzer,
		unreachable.Analyzer,
		unsafeptr.Analyzer,
		unusedresult.Analyzer,
	)
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: mdsvet <package patterns>   (e.g. mdsvet ./...)")
		os.Exit(2)
	}
	// Invoked by the go command as a vettool (flags or a *.cfg unit
	// file): speak the unitchecker protocol. unitchecker.Main never
	// returns.
	if strings.HasPrefix(args[0], "-") || strings.HasSuffix(args[0], ".cfg") {
		unitchecker.Main(suite()...)
	}
	// Invoked with package patterns: delegate loading to the go
	// command, pointing vet back at this very binary.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdsvet: cannot locate own binary: %v\n", err)
		os.Exit(2)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "mdsvet: %v\n", err)
		os.Exit(2)
	}
}
