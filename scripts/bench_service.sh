#!/usr/bin/env bash
# bench_service.sh — run the black-box saturation harness and write
# BENCH_service.json.
#
# The harness (internal/service/blackbox_test.go, TestSaturationBlackbox)
# boots a real daemon per scenario on a loopback socket and drives it
# with a closed-loop load generator: hot-cache throughput, queue
# saturation with 503 shedding, an adversarial mix exercising the
# 400/401/429 rejection paths under auth + quotas, a drain under load,
# a warm restart on a persisted store (zero recomputes), and a SIGKILL
# mid-load with planted corruption. The emitted JSON records per-scenario
# throughput, p50/p95/p99 latency, and status counts, plus warm-hit
# rate, restart-to-ready latency, quarantine counts, and
# daemon_survived — the perf and degradation snapshot tracked across PRs.
#
# Usage: scripts/bench_service.sh [output.json]
#   MDSD_BENCH_DURATION=500ms|3s|...   per-scenario load window
#                                      (default 2s here; the bare test
#                                      default is 500ms)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_service.json}"
duration="${MDSD_BENCH_DURATION:-2s}"

log="$(mktemp)"
trap 'rm -f "$log"' EXIT

status=0
MDSD_BENCH_OUT="$(pwd)/$out" MDSD_BENCH_DURATION="$duration" \
	go test ./internal/service/ -run '^TestSaturationBlackbox$' -count=1 -v \
	>"$log" 2>&1 || status=$?
grep -E '^(=== RUN|--- (PASS|FAIL)|    --- (PASS|FAIL)|ok|FAIL)' "$log" || cat "$log"

if [[ "$status" -ne 0 ]]; then
	echo "bench_service: harness failed (exit $status)" >&2
	exit "$status"
fi
if [[ ! -s "$out" ]]; then
	echo "bench_service: no report written to $out" >&2
	exit 1
fi
echo "wrote $out"
