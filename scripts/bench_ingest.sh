#!/usr/bin/env bash
# bench_ingest.sh — benchmark the huge-graph ingestion pipeline and write
# BENCH_ingest.json.
#
# The run generates a near-planar instance (disjoint 12x12 grid
# components) at INGEST_EDGES edges, then measures every stage through
# cmd/mdsingest: sequential text parse, parallel text parse, text→csrbin
# conversion, csrbin mmap load, and the partition-first solve. The JSON
# records one entry per stage (wall time, peak RSS, fingerprint where
# computed) plus the two headline ratios:
#
#   - load_speedup:  sequential text parse wall / csrbin mmap load wall
#     (the format's reason to exist — must be >= 50x at full scale)
#   - parse_speedup: sequential / parallel text parse wall at
#     INGEST_WORKERS workers, with byte-identical fingerprints
#
# Usage: scripts/bench_ingest.sh [output.json]
#   INGEST_EDGES=100000000   target edge count (default 10^8; CI uses a
#                            small value as a smoke test)
#   INGEST_WORKERS=4         parallel parse / solve worker count
#   INGEST_SOLVE=1           set to 0 to skip the solve stage (CI smoke
#                            keeps it on; it is cheap at smoke scale)
#   INGEST_R1/INGEST_R2      solve radii (default 1/2, the cheapest legal
#                            parameters — the solve entry demonstrates the
#                            driver, not solver throughput)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_ingest.json}"
edges="${INGEST_EDGES:-100000000}"
workers="${INGEST_WORKERS:-4}"
solve="${INGEST_SOLVE:-1}"
r1="${INGEST_R1:-1}"
r2="${INGEST_R2:-2}"

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
edgefile="$work/huge.edges"
binfile="$work/huge.csrbin"
results="$work/results.jsonl"

go build -o "$work/mdsingest" ./cmd/mdsingest

run_stage() {
	echo ">> $*" >&2
	"$work/mdsingest" "$@" | tee -a "$results"
}

run_stage -mode gen -edges "$edges" -o "$edgefile"
run_stage -mode parse-seq -in "$edgefile" -fingerprint
run_stage -mode parse -in "$edgefile" -workers "$workers" -fingerprint
run_stage -mode convert -in "$edgefile" -o "$binfile" -workers "$workers"
run_stage -mode load -in "$binfile" -fingerprint
if [ "$solve" != "0" ]; then
	run_stage -mode solve -in "$binfile" -workers "$workers" -r1 "$r1" -r2 "$r2"
fi

jq -s --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" --argjson edges "$edges" '
def stage(m): map(select(.mode == m)) | first;
{
	generated: $date,
	target_edges: $edges,
	stages: .,
	load_speedup: ((stage("parse-seq").wall_seconds) / (stage("load").wall_seconds)),
	parse_speedup: ((stage("parse-seq").wall_seconds) / (stage("parse").wall_seconds)),
	fingerprints_match: ([stage("parse-seq"), stage("parse"), stage("load")]
		| map(.fingerprint) | unique | length == 1)
}' "$results" > "$out"

# The invariants the format exists for: all three load paths see the same
# graph, and the binary load beats re-parsing by a wide margin.
jq -e '.fingerprints_match' "$out" > /dev/null ||
	{ echo "bench_ingest: fingerprints diverge across load paths" >&2; exit 1; }
jq -e '.parse_speedup >= 1.0' "$out" > /dev/null ||
	{ echo "bench_ingest: parallel parse slower than sequential" >&2; exit 1; }
jq -e '.load_speedup >= 50.0' "$out" > /dev/null ||
	{ echo "bench_ingest: csrbin load under 50x parse (got $(jq .load_speedup "$out"))" >&2; exit 1; }

echo "wrote $out (load_speedup $(jq .load_speedup "$out"), parse_speedup $(jq .parse_speedup "$out"))"
