#!/usr/bin/env bash
# lint.sh — the repo's full static-analysis gate:
#
#   1. go vet (stock toolchain vet)
#   2. cmd/mdsvet (repo-specific determinism/service analyzers + the
#      bundled x/tools passes; see internal/analysis)
#   3. staticcheck, pinned (skipped when not installed: the repo builds
#      offline, so the local gate must not depend on network access)
#   4. govulncheck, pinned (same skip rule)
#
# CI installs the pinned versions and runs all four. Exits nonzero on
# any finding.
set -euo pipefail
cd "$(dirname "$0")/.."

# Pinned external linter versions; CI installs exactly these.
STATICCHECK_VERSION="2025.1"
GOVULNCHECK_VERSION="v1.1.4"

echo "==> go vet"
go vet ./...

echo "==> mdsvet"
go run ./cmd/mdsvet ./...

if command -v staticcheck >/dev/null 2>&1; then
  echo "==> staticcheck ($(staticcheck -version 2>/dev/null || true))"
  staticcheck ./...
else
  echo "==> staticcheck not installed; skipped (CI pins ${STATICCHECK_VERSION})"
fi

if command -v govulncheck >/dev/null 2>&1; then
  echo "==> govulncheck"
  govulncheck ./...
else
  echo "==> govulncheck not installed; skipped (CI pins ${GOVULNCHECK_VERSION})"
fi

echo "lint OK"
