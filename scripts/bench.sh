#!/usr/bin/env bash
# bench.sh — run the exact-solver benchmark family and write BENCH_exact.json.
#
# The JSON records one entry per benchmark line (name, iterations, ns/op,
# B/op, allocs/op, and the "opt" metric where reported), so the solver's
# perf trajectory is machine-readable across PRs. CI runs it with the
# default single iteration (BENCHTIME=1x) as a smoke + snapshot; local
# measurement runs want BENCHTIME=2s or similar for stable numbers.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=1x|2s|...   benchtime passed to go test (default 1x)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_exact.json}"
benchtime="${BENCHTIME:-1x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Both families: the full-dispatch surface at the repo root and the
# engine-vs-reference family in internal/mds.
go test -run '^$' -bench '^BenchmarkExactMDS' -benchtime "$benchtime" -benchmem \
	. ./internal/mds | tee "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v benchtime="$benchtime" '
BEGIN {
	printf "{\n  \"generated\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"results\": [", date, benchtime
	first = 1
}
/^Benchmark/ && NF >= 4 {
	name = $1; iters = $2
	ns = ""; bop = ""; aop = ""; opt = ""
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bop = $i
		if ($(i+1) == "allocs/op") aop = $i
		if ($(i+1) == "opt") opt = $i
	}
	if (!first) printf ","
	first = 0
	printf "\n    {\"name\": \"%s\", \"iters\": %s", name, iters
	if (ns != "") printf ", \"ns_op\": %s", ns
	if (bop != "") printf ", \"b_op\": %s", bop
	if (aop != "") printf ", \"allocs_op\": %s", aop
	if (opt != "") printf ", \"opt\": %s", opt
	printf "}"
}
END { print "\n  ]\n}" }
' "$tmp" > "$out"

echo "wrote $out"
